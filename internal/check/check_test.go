package check

import (
	"strings"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

const smallBLIF = `
.model small
.inputs a b c d
.outputs y z
.names a b t
11 1
.names t c y
1- 1
-1 1
.names c d z
10 1
.end
`

// buildDesign pushes the small BLIF through pack, place and route so tests
// can corrupt individual artifacts.
func buildDesign(t *testing.T) (*pack.Packing, *place.Problem, *place.Placement, *route.Result, *arch.Arch) {
	t.Helper()
	nl, err := netlist.ParseBLIF(smallBLIF)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 1, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("small design unroutable")
	}
	return pk, p, pl, r, a
}

func wantRule(t *testing.T, rep *Report, rule string) Diagnostic {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Rule == rule {
			return d
		}
	}
	t.Fatalf("rule %s did not fire; got:\n%s", rule, rep.Format())
	return Diagnostic{}
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Count(Error) > 0 {
		t.Fatalf("unexpected error diagnostics:\n%s", rep.Format())
	}
}

func TestRegistryShape(t *testing.T) {
	rules := Rules()
	if len(rules) < 12 {
		t.Fatalf("only %d rules registered, want >= 12", len(rules))
	}
	stages := map[Stage]int{}
	ids := map[string]bool{}
	for _, r := range rules {
		if ids[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		ids[r.ID] = true
		stages[r.Stage]++
		if r.Doc == "" || r.Applies == nil || r.Run == nil {
			t.Errorf("rule %s incompletely declared", r.ID)
		}
	}
	if len(stages) < 4 {
		t.Fatalf("rules span only %d stages (%v), want >= 4", len(stages), stages)
	}
	if RuleByID("route/connectivity") == nil {
		t.Error("RuleByID lookup failed")
	}
}

func TestMultiDrivenNet(t *testing.T) {
	blif := `
.model dup
.inputs a b
.outputs y
.names a y
1 1
.names b y
1 1
.end
`
	rep := RunStage(StageNetlist, &Artifacts{BLIF: blif})
	d := wantRule(t, rep, "net/multi-driven")
	if d.Object != "y" {
		t.Errorf("multi-driven object = %q, want y", d.Object)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "net/multi-driven") {
		t.Errorf("Err() = %v, want to name net/multi-driven", err)
	}
	// An input redeclared as a .names output is also a double driver.
	rep = RunStage(StageNetlist, &Artifacts{BLIF: ".model m\n.inputs x\n.outputs x\n.names x\n1\n.end\n"})
	wantRule(t, rep, "net/multi-driven")
	// The clean BLIF stays clean.
	wantClean(t, RunStage(StageNetlist, &Artifacts{BLIF: smallBLIF}))
}

func TestUndrivenAndArity(t *testing.T) {
	nl, err := netlist.ParseBLIF(smallBLIF)
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, RunStage(StageNetlist, &Artifacts{Netlist: nl}))

	// Declare an output nobody drives.
	nl.MarkOutput("ghost")
	rep := RunStage(StageNetlist, &Artifacts{Netlist: nl})
	if d := wantRule(t, rep, "net/undriven"); d.Object != "ghost" {
		t.Errorf("undriven object = %q", d.Object)
	}

	// A 5-input node violates K=4 but is fine with arity checking off.
	nl2, _ := netlist.ParseBLIF(".model w\n.inputs a b c d e\n.outputs y\n.names a b c d e y\n11111 1\n.end\n")
	wantClean(t, RunStage(StageNetlist, &Artifacts{Netlist: nl2}))
	rep = RunStage(StageNetlist, &Artifacts{Netlist: nl2, K: 4})
	wantRule(t, rep, "net/lut-arity")
}

func TestCombLoopRule(t *testing.T) {
	nl, err := netlist.ParseBLIF(smallBLIF)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire t and y into a cycle: t reads y, y reads t.
	tn, yn := nl.Node("t"), nl.Node("y")
	tn.Fanin = []*netlist.Node{yn}
	tn.Cover = netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1")}, Value: netlist.LitOne}
	rep := RunStage(StageNetlist, &Artifacts{Netlist: nl})
	d := wantRule(t, rep, "net/comb-loop")
	if !strings.Contains(d.Message, "t") || !strings.Contains(d.Message, "y") {
		t.Errorf("loop message %q should name both members", d.Message)
	}
	// A latch in the cycle breaks it.
	nl2, _ := netlist.ParseBLIF(".model seq\n.inputs a\n.outputs q\n.names a q d\n11 1\n.latch d q 0\n.end\n")
	wantClean(t, RunStage(StageNetlist, &Artifacts{Netlist: nl2}))
}

func TestPackRules(t *testing.T) {
	pk, _, _, _, _ := buildDesign(t)
	wantClean(t, RunStage(StagePack, &Artifacts{Packing: pk}))

	// Overstuff cluster 0 past N by stealing BLEs... instead, shrink N in
	// the params copy so the recomputation sees a violation.
	pk.Params.N = 1
	rep := RunStage(StagePack, &Artifacts{Packing: pk})
	wantRule(t, rep, "pack/cluster-size")
	pk.Params.N = 5

	// Stale input list.
	if len(pk.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	saved := pk.Clusters[0].Inputs
	pk.Clusters[0].Inputs = append([]string{"bogus"}, saved...)
	rep = RunStage(StagePack, &Artifacts{Packing: pk})
	wantRule(t, rep, "pack/cluster-inputs")
	pk.Clusters[0].Inputs = saved

	// Duplicate a BLE into a second cluster.
	extra := &pack.Cluster{ID: 99, BLEs: []*pack.BLE{pk.Clusters[0].BLEs[0]}}
	pk.Clusters = append(pk.Clusters, extra)
	extra.Inputs = pk.ExternalInputsOf(extra.BLEs)
	rep = RunStage(StagePack, &Artifacts{Packing: pk})
	wantRule(t, rep, "pack/coverage")
	pk.Clusters = pk.Clusters[:len(pk.Clusters)-1]
}

func TestOverlappingPlacement(t *testing.T) {
	_, p, pl, _, _ := buildDesign(t)
	wantClean(t, RunStage(StagePlace, &Artifacts{Problem: p, Placement: pl}))

	// Inject an overlap: move block 1 onto block 0's site.
	saved := pl.Loc[1]
	pl.Loc[1] = pl.Loc[0]
	rep := RunStage(StagePlace, &Artifacts{Problem: p, Placement: pl})
	wantRule(t, rep, "place/overlap")
	pl.Loc[1] = saved

	// A CLB pushed off the grid.
	var clb int = -1
	for _, b := range p.Blocks {
		if b.Kind == place.BlockCLB {
			clb = b.ID
			break
		}
	}
	if clb >= 0 {
		saved := pl.Loc[clb]
		pl.Loc[clb] = place.Location{X: 0, Y: 0}
		rep = RunStage(StagePlace, &Artifacts{Problem: p, Placement: pl})
		wantRule(t, rep, "place/out-of-grid")
		pl.Loc[clb] = saved
	}

	// A pad dragged into the logic array.
	var padID = -1
	for _, b := range p.Blocks {
		if b.Kind != place.BlockCLB {
			padID = b.ID
			break
		}
	}
	if padID >= 0 {
		saved := pl.Loc[padID]
		pl.Loc[padID] = place.Location{X: 1, Y: 1}
		rep = RunStage(StagePlace, &Artifacts{Problem: p, Placement: pl})
		wantRule(t, rep, "place/io-perimeter")
		pl.Loc[padID] = saved
	}
}

func TestDisconnectedRoute(t *testing.T) {
	_, p, pl, r, _ := buildDesign(t)
	arts := &Artifacts{Graph: r.Graph, Routing: r, Problem: p, Placement: pl}
	wantClean(t, RunStage(StageRoute, arts))

	// Find a net whose first path has at least 3 nodes and cut out the
	// middle: the remaining hop has no RR edge, so the tree is broken.
	for _, nr := range r.Routes {
		if len(nr.Paths) == 0 || len(nr.Paths[0]) < 3 {
			continue
		}
		path := nr.Paths[0]
		saved := append([]int(nil), path...)
		nr.Paths[0] = append(append([]int(nil), path[0]), path[2:]...)
		rep := RunStage(StageRoute, arts)
		d := wantRule(t, rep, "route/connectivity")
		if !strings.Contains(d.Message, "missing RR edge") && !strings.Contains(d.Message, "detached") {
			t.Errorf("unexpected connectivity message %q", d.Message)
		}
		nr.Paths[0] = saved
		return
	}
	t.Fatal("no route long enough to corrupt")
}

func TestRouteOveruse(t *testing.T) {
	_, p, pl, r, _ := buildDesign(t)
	// Squeeze a used wire's capacity to zero: whatever single net legally
	// occupies it is now an overuse.
	for _, nr := range r.Routes {
		for id := range nr.Nodes() {
			ty := r.Graph.Nodes[id].Type
			if ty == rrgraph.ChanX || ty == rrgraph.ChanY {
				saved := r.Graph.Nodes[id].Capacity
				r.Graph.Nodes[id].Capacity = 0
				rep := RunStage(StageRoute, &Artifacts{Routing: r, Problem: p, Placement: pl})
				wantRule(t, rep, "route/overuse")
				r.Graph.Nodes[id].Capacity = saved
				return
			}
		}
	}
	t.Fatal("no routed wire found")
}

func TestBitstreamCrossChecks(t *testing.T) {
	pk, p, pl, r, a := buildDesign(t)
	bs, err := bitstream.Generate(pk, p, pl, r)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := bitstream.Encode(bs)
	if err != nil {
		t.Fatal(err)
	}
	arts := func(encoded []byte) *Artifacts {
		return &Artifacts{Encoded: encoded, Arch: a, Packing: pk,
			Problem: p, Placement: pl, Graph: r.Graph, Routing: r}
	}
	wantClean(t, RunAll(arts(enc)))

	// Truncated stream: decode fails.
	rep := RunStage(StageBitstream, arts(enc[:8]))
	wantRule(t, rep, "bits/decode")

	// Flip a LUT mask bit on a tile that actually hosts a cluster.
	var loc place.Location
	found := false
	for _, b := range p.Blocks {
		if b.Kind == place.BlockCLB {
			loc, found = pl.Loc[b.ID], true
			break
		}
	}
	if !found {
		t.Fatal("no placed CLB")
	}
	mut := bs.Clone()
	cfg, err := mut.CLBAt(loc.X, loc.Y)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BLEs[0].LUT[0] = !cfg.BLEs[0].LUT[0]
	encMut, err := bitstream.Encode(mut)
	if err != nil {
		t.Fatal(err)
	}
	rep = RunStage(StageBitstream, arts(encMut))
	wantRule(t, rep, "bits/lut-mask")

	// Drop an enabled switch: the routed design no longer matches.
	mut2 := bs.Clone()
	dropped := false
	for key := range mut2.SwitchOn {
		delete(mut2.SwitchOn, key)
		dropped = true
		break
	}
	if dropped {
		encMut2, err := bitstream.Encode(mut2)
		if err != nil {
			t.Fatal(err)
		}
		rep = RunStage(StageBitstream, arts(encMut2))
		wantRule(t, rep, "bits/switch-route")
	}
}

func TestDisableAndRecord(t *testing.T) {
	blif := ".model dup\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n"
	rep := RunStage(StageNetlist, &Artifacts{BLIF: blif, Disable: []string{"net/multi-driven"}})
	if len(rep.Diags) != 0 {
		t.Fatalf("disabled rule still fired:\n%s", rep.Format())
	}

	tr := obs.New("check-test")
	rep = RunStage(StageNetlist, &Artifacts{BLIF: blif})
	rep.Record(tr)
	if tr.Counters()["check.errors"] == 0 {
		t.Error("check.errors counter not recorded")
	}
	if tr.Counters()["check.netlist.diags"] == 0 {
		t.Error("per-stage diag counter not recorded")
	}
	if !strings.Contains(rep.Format(), "net/multi-driven") {
		t.Error("Format() should include the rule ID")
	}
}
