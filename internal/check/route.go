package check

import (
	"fmt"

	"fpgaflow/internal/rrgraph"
)

// Route-stage rules: a structural audit of the routing-resource graph
// (every edge lands on a real node, no self-loops, sane capacities, pins
// attached to the fabric) and a DRC of the PathFinder result (every net's
// route tree runs from its source to every sink over existing edges, no
// resource above capacity).

func hasGraph(a *Artifacts) bool { return a.Graph != nil }

func hasRouting(a *Artifacts) bool {
	return a.Routing != nil && a.Routing.Graph != nil &&
		a.Problem != nil && a.Placement != nil
}

func init() {
	register(Rule{
		ID:       "route/rr-dangling",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "an RR-graph edge points at a node ID outside the graph",
		Applies:  hasGraph,
		Run:      runRRDangling,
	})
	register(Rule{
		ID:       "route/rr-self-loop",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "an RR-graph node has an edge to itself",
		Applies:  hasGraph,
		Run:      runRRSelfLoop,
	})
	register(Rule{
		ID:       "route/rr-capacity",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "an RR-graph node has capacity < 1, a wire with no span, or a wire off its channel",
		Applies:  hasGraph,
		Run:      runRRCapacity,
	})
	register(Rule{
		ID:       "route/rr-isolated-pin",
		Stage:    StageRoute,
		Severity: Warn,
		Doc:      "a block pin is disconnected from the channel fabric (OPin drives no wire / IPin fed by none)",
		Applies:  hasGraph,
		Run:      runRRIsolatedPin,
	})
	register(Rule{
		ID:       "route/connectivity",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "a net's route tree does not connect its source to every sink over existing RR edges",
		Applies:  hasRouting,
		Run:      runConnectivity,
	})
	register(Rule{
		ID:       "route/overuse",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "a routing resource carries more nets than its capacity (channel overuse / short)",
		Applies:  hasRouting,
		Run:      runOveruse,
	})
}

func rrNodeName(n *rrgraph.Node) string {
	return fmt.Sprintf("%s@(%d,%d)#%d", n.Type, n.X, n.Y, n.ID)
}

func runRRDangling(a *Artifacts, rep *reporter) {
	g := a.Graph
	for _, n := range g.Nodes {
		if n == nil {
			rep.add(fmt.Sprintf("#%d", len(g.Nodes)), "nil node in RR graph")
			continue
		}
		for _, e := range n.Edges {
			if e < 0 || e >= len(g.Nodes) {
				rep.add(rrNodeName(n), "edge to nonexistent node %d (graph has %d nodes)", e, len(g.Nodes))
			}
		}
	}
}

func runRRSelfLoop(a *Artifacts, rep *reporter) {
	for _, n := range a.Graph.Nodes {
		for _, e := range n.Edges {
			if e == n.ID {
				rep.add(rrNodeName(n), "self-loop edge")
			}
		}
	}
}

func runRRCapacity(a *Artifacts, rep *reporter) {
	g := a.Graph
	for _, n := range g.Nodes {
		if n.Capacity < 1 {
			rep.add(rrNodeName(n), "capacity %d < 1", n.Capacity)
		}
		if n.Type == rrgraph.ChanX || n.Type == rrgraph.ChanY {
			if n.Span < 1 {
				rep.add(rrNodeName(n), "wire with span %d", n.Span)
			}
			if n.Track < 0 || n.Track >= g.W {
				rep.add(rrNodeName(n), "wire track %d outside channel width %d", n.Track, g.W)
			}
		}
	}
}

// runRRIsolatedPin checks fan-in/out sanity of the block pins: every OPin
// should reach at least one wire, every IPin be reachable from at least
// one. (Edges to the block-internal source/sink always exist; the question
// is whether the connection boxes attached the pin to the fabric at all.)
func runRRIsolatedPin(a *Artifacts, rep *reporter) {
	g := a.Graph
	wireFanin := make(map[int]bool) // IPin IDs fed by a wire
	for _, n := range g.Nodes {
		if n.Type != rrgraph.ChanX && n.Type != rrgraph.ChanY {
			continue
		}
		for _, e := range n.Edges {
			if e >= 0 && e < len(g.Nodes) && g.Nodes[e].Type == rrgraph.IPin {
				wireFanin[e] = true
			}
		}
	}
	for _, n := range g.Nodes {
		switch n.Type {
		case rrgraph.OPin:
			drivesWire := false
			for _, e := range n.Edges {
				if e < 0 || e >= len(g.Nodes) {
					continue
				}
				t := g.Nodes[e].Type
				if t == rrgraph.ChanX || t == rrgraph.ChanY {
					drivesWire = true
					break
				}
			}
			if !drivesWire {
				rep.add(rrNodeName(n), "output pin drives no channel wire")
			}
		case rrgraph.IPin:
			if !wireFanin[n.ID] {
				rep.add(rrNodeName(n), "input pin is fed by no channel wire")
			}
		}
	}
}

func runConnectivity(a *Artifacts, rep *reporter) {
	r, p, pl := a.Routing, a.Problem, a.Placement
	g := r.Graph
	if len(r.Routes) != len(p.Nets) {
		rep.add("", "%d routes for %d nets", len(r.Routes), len(p.Nets))
		return
	}
	for ni, nr := range r.Routes {
		net := p.Nets[ni]
		if nr == nil {
			rep.add(net.Signal, "net unrouted")
			continue
		}
		if len(nr.Paths) != len(net.Blocks)-1 {
			rep.add(net.Signal, "%d paths for %d sinks", len(nr.Paths), len(net.Blocks)-1)
			continue
		}
		srcLoc := pl.Loc[net.Blocks[0]]
		wantSrc := g.SourceAt(srcLoc.X, srcLoc.Y)
		tree := map[int]bool{}
		for si, path := range nr.Paths {
			if len(path) == 0 {
				rep.add(net.Signal, "sink %d has an empty path", si)
				continue
			}
			bad := false
			for _, id := range path {
				if id < 0 || id >= len(g.Nodes) {
					rep.add(net.Signal, "sink %d path uses nonexistent node %d", si, id)
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			if si == 0 {
				if path[0] != wantSrc {
					rep.add(net.Signal, "first path starts at %s, want source %s",
						rrNodeName(g.Nodes[path[0]]), rrNodeName(g.Nodes[wantSrc]))
				}
			} else if !tree[path[0]] {
				rep.add(net.Signal, "sink %d path starts at %s, detached from the net's route tree",
					si, rrNodeName(g.Nodes[path[0]]))
			}
			sinkLoc := pl.Loc[net.Blocks[si+1]]
			if want := g.SinkAt(sinkLoc.X, sinkLoc.Y); path[len(path)-1] != want {
				rep.add(net.Signal, "sink %d path ends at %s, want sink %s",
					si, rrNodeName(g.Nodes[path[len(path)-1]]), rrNodeName(g.Nodes[want]))
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.HasEdge(path[i], path[i+1]) {
					rep.add(net.Signal, "path uses missing RR edge %s -> %s",
						rrNodeName(g.Nodes[path[i]]), rrNodeName(g.Nodes[path[i+1]]))
				}
			}
			for _, id := range path {
				tree[id] = true
			}
		}
	}
}

func runOveruse(a *Artifacts, rep *reporter) {
	r := a.Routing
	g := r.Graph
	usage := make([]int, len(g.Nodes))
	for _, nr := range r.Routes {
		if nr == nil {
			continue
		}
		for id := range nr.Nodes() {
			if id >= 0 && id < len(usage) {
				usage[id]++
			}
		}
	}
	for id, u := range usage {
		if u > g.Nodes[id].Capacity {
			rep.add(rrNodeName(g.Nodes[id]), "%d nets through a capacity-%d resource", u, g.Nodes[id].Capacity)
		}
	}
}
