package check

import (
	"fmt"

	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/place"
	"fpgaflow/internal/rrgraph"
)

// Bitstream-stage rules: decode the DAGGER bitstream back out of its binary
// form and cross-check it against the placed-and-routed design — LUT masks
// and register bits against the packed netlist, enabled routing switches
// against the PathFinder route trees, the pad table against the placement.
// Every comparison recomputes the expected side from the upstream
// artifacts, so a bug in Generate, Encode or Decode surfaces here instead
// of as a wrong extraction or a misbehaving device.

func hasEncoded(a *Artifacts) bool { return len(a.Encoded) > 0 && a.Arch != nil }

func hasFullDesign(a *Artifacts) bool {
	return len(a.Encoded) > 0 && a.Packing != nil && hasPlacement(a) && hasRouting(a)
}

func init() {
	register(Rule{
		ID:       "bits/decode",
		Stage:    StageBitstream,
		Severity: Error,
		Doc:      "the encoded bitstream fails to decode, or decodes to a different architecture",
		Applies:  hasEncoded,
		Run:      runBitsDecode,
	})
	register(Rule{
		ID:       "bits/lut-mask",
		Stage:    StageBitstream,
		Severity: Error,
		Doc:      "a decoded LUT mask, register mux or FF init bit disagrees with the packed netlist",
		Applies:  hasFullDesign,
		Run:      runBitsLUTMask,
	})
	register(Rule{
		ID:       "bits/switch-route",
		Stage:    StageBitstream,
		Severity: Error,
		Doc:      "the decoded routing switch states disagree with the routed design's switch set",
		Applies:  hasFullDesign,
		Run:      runBitsSwitchRoute,
	})
	register(Rule{
		ID:       "bits/pads",
		Stage:    StageBitstream,
		Severity: Error,
		Doc:      "the decoded pad table disagrees with the placement (missing, misplaced or misdirected pads)",
		Applies:  hasFullDesign,
		Run:      runBitsPads,
	})
}

func decodeFor(a *Artifacts, rep *reporter) *bitstream.Bitstream {
	bs, err := bitstream.Decode(a.Encoded)
	if err != nil {
		rep.add("", "decode failed: %v", err)
		return nil
	}
	return bs
}

func runBitsDecode(a *Artifacts, rep *reporter) {
	bs := decodeFor(a, rep)
	if bs == nil {
		return
	}
	d, w := bs.Arch, a.Arch
	if d.Rows != w.Rows || d.Cols != w.Cols {
		rep.add("", "decoded grid %dx%d, design uses %dx%d", d.Cols, d.Rows, w.Cols, w.Rows)
	}
	if d.CLB.N != w.CLB.N || d.CLB.K != w.CLB.K || d.CLB.I != w.CLB.I {
		rep.add("", "decoded CLB N=%d K=%d I=%d, design uses N=%d K=%d I=%d",
			d.CLB.N, d.CLB.K, d.CLB.I, w.CLB.N, w.CLB.K, w.CLB.I)
	}
	if d.Routing.ChannelWidth != w.Routing.ChannelWidth {
		rep.add("", "decoded channel width %d, design uses %d",
			d.Routing.ChannelWidth, w.Routing.ChannelWidth)
	}
}

func runBitsLUTMask(a *Artifacts, rep *reporter) {
	bs := decodeFor(a, rep)
	if bs == nil {
		return
	}
	k := a.Arch.CLB.K
	for _, b := range a.Problem.Blocks {
		if b.Kind != place.BlockCLB {
			continue
		}
		l := a.Placement.Loc[b.ID]
		cfg, err := bs.CLBAt(l.X, l.Y)
		if err != nil {
			rep.add(b.Name, "placed at (%d,%d): %v", l.X, l.Y, err)
			continue
		}
		for i, ble := range b.Cluster.BLEs {
			if i >= len(cfg.BLEs) {
				rep.add(b.Name, "cluster has %d BLEs, decoded tile only %d", len(b.Cluster.BLEs), len(cfg.BLEs))
				break
			}
			bc := &cfg.BLEs[i]
			want, err := bitstream.ExpectedLUT(ble, k)
			if err != nil {
				rep.add(ble.Name(), "cannot compute expected LUT mask: %v", err)
				continue
			}
			for m := range want {
				if m >= len(bc.LUT) || bc.LUT[m] != want[m] {
					rep.add(ble.Name(), "LUT mask bit %d decoded %v, netlist wants %v",
						m, bitAt(bc.LUT, m), want[m])
					break
				}
			}
			if bc.Registered != ble.Registered() {
				rep.add(ble.Name(), "register mux decoded %v, packing wants %v", bc.Registered, ble.Registered())
			}
			if ble.FF != nil && bc.Init != (ble.FF.Init == '1') {
				rep.add(ble.Name(), "FF init decoded %v, netlist wants %v", bc.Init, ble.FF.Init == '1')
			}
		}
	}
}

func bitAt(lut []bool, m int) bool { return m < len(lut) && lut[m] }

// expectedSwitchSets recomputes the enabled switch/pin-connection sets from
// the route trees, independently of what Generate produced.
func expectedSwitchSets(a *Artifacts) (sw, op, ip map[[2]int]bool) {
	sw = map[[2]int]bool{}
	op = map[[2]int]bool{}
	ip = map[[2]int]bool{}
	g := a.Routing.Graph
	isWire := func(t rrgraph.NodeType) bool { return t == rrgraph.ChanX || t == rrgraph.ChanY }
	for _, nr := range a.Routing.Routes {
		if nr == nil {
			continue
		}
		for _, path := range nr.Paths {
			for i := 0; i+1 < len(path); i++ {
				from, to := g.Nodes[path[i]], g.Nodes[path[i+1]]
				switch {
				case isWire(from.Type) && isWire(to.Type):
					key := [2]int{from.ID, to.ID}
					if key[0] > key[1] {
						key[0], key[1] = key[1], key[0]
					}
					sw[key] = true
				case from.Type == rrgraph.OPin && isWire(to.Type):
					op[[2]int{from.ID, to.ID}] = true
				case isWire(from.Type) && to.Type == rrgraph.IPin:
					ip[[2]int{from.ID, to.ID}] = true
				}
			}
		}
	}
	return sw, op, ip
}

func runBitsSwitchRoute(a *Artifacts, rep *reporter) {
	bs := decodeFor(a, rep)
	if bs == nil {
		return
	}
	wantSw, wantOp, wantIp := expectedSwitchSets(a)
	compare := func(kind string, got, want map[[2]int]bool) {
		for key := range want {
			if !got[key] {
				rep.add(edgeName(a.Routing.Graph, key), "routed %s missing from the bitstream", kind)
			}
		}
		for key := range got {
			if !want[key] {
				rep.add(edgeName(a.Routing.Graph, key), "bitstream enables a %s no net routes through", kind)
			}
		}
	}
	compare("wire switch", bs.SwitchOn, wantSw)
	compare("output-pin connection", bs.OPinOn, wantOp)
	compare("input-pin connection", bs.IPinOn, wantIp)
}

func edgeName(g *rrgraph.Graph, key [2]int) string {
	name := func(id int) string {
		if id < 0 || id >= len(g.Nodes) {
			return fmt.Sprintf("#%d", id)
		}
		return rrNodeName(g.Nodes[id])
	}
	return name(key[0]) + "<->" + name(key[1])
}

func runBitsPads(a *Artifacts, rep *reporter) {
	bs := decodeFor(a, rep)
	if bs == nil {
		return
	}
	expected := map[[3]int]*place.Block{}
	for _, b := range a.Problem.Blocks {
		if b.Kind == place.BlockCLB {
			continue
		}
		l := a.Placement.Loc[b.ID]
		key := [3]int{l.X, l.Y, l.Sub}
		expected[key] = b
		pad, ok := bs.Pads[key]
		if !ok {
			rep.add(b.Name, "%s at (%d,%d,%d) has no decoded pad entry", b.Kind, l.X, l.Y, l.Sub)
			continue
		}
		wantInput := b.Kind == place.BlockInpad
		if pad.Input != wantInput {
			rep.add(b.Name, "pad direction decoded input=%v, placement wants input=%v", pad.Input, wantInput)
		}
		wantName := b.Name
		if b.Kind == place.BlockOutpad {
			wantName = b.Name[len("out:"):]
		}
		if pad.Name != wantName {
			rep.add(b.Name, "pad name decoded %q, want %q", pad.Name, wantName)
		}
	}
	for key, pad := range bs.Pads {
		if pad.Used && expected[key] == nil {
			rep.add(pad.Name, "bitstream configures a pad at (%d,%d,%d) where no block is placed",
				key[0], key[1], key[2])
		}
	}
}
