package check

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/rrgraph"
)

// TestRRGraphAudit feeds deliberately corrupted routing-resource graphs
// through the RR audit rules and checks each corruption is caught by the
// right rule (satellite: ISSUE.md item 3).
func TestRRGraphAudit(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(g *rrgraph.Graph)
		rule    string
	}{
		{
			name: "dangling-edge",
			corrupt: func(g *rrgraph.Graph) {
				g.Nodes[0].Edges = append(g.Nodes[0].Edges, len(g.Nodes)+7)
			},
			rule: "route/rr-dangling",
		},
		{
			name: "negative-edge",
			corrupt: func(g *rrgraph.Graph) {
				g.Nodes[0].Edges = append(g.Nodes[0].Edges, -1)
			},
			rule: "route/rr-dangling",
		},
		{
			name: "self-loop",
			corrupt: func(g *rrgraph.Graph) {
				n := g.Nodes[3]
				n.Edges = append(n.Edges, n.ID)
			},
			rule: "route/rr-self-loop",
		},
		{
			name: "zero-capacity",
			corrupt: func(g *rrgraph.Graph) {
				g.Nodes[5].Capacity = 0
			},
			rule: "route/rr-capacity",
		},
		{
			name: "wire-without-span",
			corrupt: func(g *rrgraph.Graph) {
				for _, n := range g.Nodes {
					if n.Type == rrgraph.ChanX {
						n.Span = 0
						return
					}
				}
				panic("no ChanX node")
			},
			rule: "route/rr-capacity",
		},
		{
			name: "track-off-channel",
			corrupt: func(g *rrgraph.Graph) {
				for _, n := range g.Nodes {
					if n.Type == rrgraph.ChanY {
						n.Track = g.W + 3
						return
					}
				}
				panic("no ChanY node")
			},
			rule: "route/rr-capacity",
		},
		{
			name: "isolated-opin",
			corrupt: func(g *rrgraph.Graph) {
				for _, n := range g.Nodes {
					if n.Type == rrgraph.OPin {
						kept := n.Edges[:0]
						for _, e := range n.Edges {
							t := g.Nodes[e].Type
							if t != rrgraph.ChanX && t != rrgraph.ChanY {
								kept = append(kept, e)
							}
						}
						n.Edges = kept
						return
					}
				}
				panic("no OPin node")
			},
			rule: "route/rr-isolated-pin",
		},
	}
	a := arch.Paper()
	a.Rows, a.Cols = 3, 3
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := rrgraph.Build(a)
			if err != nil {
				t.Fatal(err)
			}
			wantClean(t, RunStage(StageRoute, &Artifacts{Graph: g}))
			tc.corrupt(g)
			rep := RunStage(StageRoute, &Artifacts{Graph: g})
			wantRule(t, rep, tc.rule)
			for _, d := range rep.Diags {
				if d.Rule != tc.rule && d.Severity == Error && tc.rule != "route/rr-dangling" {
					// A single corruption should not cascade into unrelated
					// error rules (dangling edges legitimately confuse
					// downstream audits, so they are exempt).
					t.Errorf("corruption also tripped %s: %s", d.Rule, d.Message)
				}
			}
		})
	}
}
