package rrgraph

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/obs"
)

func testArch(w int) *arch.Arch {
	a := arch.Paper()
	a.Cols, a.Rows = 4, 4
	a.Routing.ChannelWidth = w
	return a
}

func TestCloneIndependence(t *testing.T) {
	g, err := Build(testArch(4))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if len(c.Nodes) != len(g.Nodes) || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape mismatch: %d/%d nodes, %d/%d edges",
			len(c.Nodes), len(g.Nodes), c.NumEdges(), g.NumEdges())
	}
	// Masking and edge removal on the clone must not leak back.
	var wire int = -1
	for _, n := range c.Nodes {
		if n.Type == ChanX && len(n.Edges) > 0 {
			wire = n.ID
			break
		}
	}
	if wire < 0 {
		t.Fatal("no ChanX wire with edges")
	}
	c.MarkDead(wire)
	peer := c.Nodes[wire].Edges[0]
	if !c.RemoveEdge(wire, peer) {
		t.Fatal("RemoveEdge failed on clone")
	}
	if g.Dead(wire) {
		t.Error("MarkDead on clone leaked into original")
	}
	if !g.HasEdge(wire, peer) {
		t.Error("RemoveEdge on clone leaked into original")
	}
	if g.DeadCount() != 0 {
		t.Errorf("original DeadCount = %d, want 0", g.DeadCount())
	}
	if c.NumEdges() != g.NumEdges()-1 {
		t.Errorf("clone edges = %d, want %d", c.NumEdges(), g.NumEdges()-1)
	}
	// Shared lookup tables still agree.
	if cs, gs := c.SourceAt(1, 1), g.SourceAt(1, 1); cs != gs {
		t.Errorf("SourceAt differs: %d vs %d", cs, gs)
	}
}

func TestCacheHitsAndIsolation(t *testing.T) {
	cache := NewCache(4)
	tr := obs.New("test")
	g1, err := cache.Get(testArch(4), tr)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := cache.Get(testArch(4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("cache returned the same graph object twice; clones required")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	cnt := tr.Counters()
	if cnt["rrgraph.cache_hits"] != 1 || cnt["rrgraph.cache_misses"] != 1 {
		t.Fatalf("obs counters = %v", cnt)
	}
	// A mask applied to one served graph must not show up in the next.
	g1.MarkDead(0)
	g3, err := cache.Get(testArch(4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if g3.Dead(0) || g3.DeadCount() != 0 {
		t.Fatal("defect mask leaked through the cache between trials")
	}
	// Different channel width is a different key.
	g4, err := cache.Get(testArch(6), tr)
	if err != nil {
		t.Fatal(err)
	}
	if g4.W != 6 {
		t.Fatalf("W = %d, want 6", g4.W)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d graphs, want 2", cache.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	cache := NewCache(2)
	for w := 2; w <= 5; w++ {
		if _, err := cache.Get(testArch(w), nil); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d graphs, want cap 2", cache.Len())
	}
	// Most recent widths are retained: W=5 must hit.
	if _, err := cache.Get(testArch(5), nil); err != nil {
		t.Fatal(err)
	}
	hits, _ := cache.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (LRU should keep the newest entries)", hits)
	}
}

func TestNilCacheFallsBackToBuild(t *testing.T) {
	var c *Cache
	g, err := c.Get(testArch(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.W != 3 {
		t.Fatal("nil cache Get did not build")
	}
}

func TestCloneBuildEquivalence(t *testing.T) {
	// A clone must be structurally identical to a fresh Build: same node
	// records, same edge lists in the same order (bitstream enumeration
	// depends on this).
	a := testArch(5)
	g1, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	for i, n1 := range g1.Nodes {
		n2 := g2.Nodes[i]
		if n1.ID != n2.ID || n1.Type != n2.Type || n1.X != n2.X || n1.Y != n2.Y ||
			n1.Track != n2.Track || n1.Span != n2.Span || n1.Capacity != n2.Capacity {
			t.Fatalf("node %d differs after clone", i)
		}
		if len(n1.Edges) != len(n2.Edges) {
			t.Fatalf("node %d edge count differs", i)
		}
		for j := range n1.Edges {
			if n1.Edges[j] != n2.Edges[j] {
				t.Fatalf("node %d edge %d differs", i, j)
			}
		}
	}
}
