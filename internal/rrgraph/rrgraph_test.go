package rrgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgaflow/internal/arch"
)

func smallArch() *arch.Arch {
	a := arch.Paper()
	a.Rows, a.Cols = 3, 3
	a.Routing.ChannelWidth = 4
	return a
}

func TestBuildSmallGrid(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	// Site classification: corners empty, borders IO, inside CLB.
	if g.Kind(0, 0) != SiteEmpty || g.Kind(4, 4) != SiteEmpty {
		t.Error("corners not empty")
	}
	if g.Kind(0, 1) != SiteIO || g.Kind(2, 0) != SiteIO || g.Kind(4, 2) != SiteIO {
		t.Error("borders not IO")
	}
	if g.Kind(2, 2) != SiteCLB {
		t.Error("center not CLB")
	}
}

func TestBlockNodeWiring(t *testing.T) {
	a := smallArch()
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	x, y := 2, 2
	src, snk := g.SourceAt(x, y), g.SinkAt(x, y)
	if src < 0 || snk < 0 {
		t.Fatal("missing source/sink at CLB")
	}
	if got := g.Nodes[src].Capacity; got != a.CLB.Outputs() {
		t.Errorf("source capacity = %d, want %d", got, a.CLB.Outputs())
	}
	if got := g.Nodes[snk].Capacity; got != a.CLB.I {
		t.Errorf("sink capacity = %d, want %d", got, a.CLB.I)
	}
	if len(g.OPins(x, y)) != a.CLB.Outputs() || len(g.IPins(x, y)) != a.CLB.I {
		t.Fatalf("pin counts: %d opins, %d ipins", len(g.OPins(x, y)), len(g.IPins(x, y)))
	}
	// Source feeds exactly its OPins.
	if len(g.Nodes[src].Edges) != a.CLB.Outputs() {
		t.Errorf("source fanout = %d", len(g.Nodes[src].Edges))
	}
	// Every IPin feeds the sink.
	for _, ip := range g.IPins(x, y) {
		found := false
		for _, e := range g.Nodes[ip].Edges {
			if e == snk {
				found = true
			}
		}
		if !found {
			t.Errorf("ipin %d does not reach sink", ip)
		}
	}
}

func TestOPinsReachTracks(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.OPins(2, 2) {
		n := g.Nodes[op]
		wires := 0
		for _, e := range n.Edges {
			et := g.Nodes[e].Type
			if et == ChanX || et == ChanY {
				wires++
			}
		}
		// Fc_out = 1: every OPin connects to all W tracks of its channel.
		if wires != g.W {
			t.Errorf("opin %d connects to %d wires, want %d", op, wires, g.W)
		}
	}
}

func TestWiresReachIPins(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	// Each IPin must be reachable from at least one wire.
	incoming := make(map[int]int)
	for _, n := range g.Nodes {
		if n.Type != ChanX && n.Type != ChanY {
			continue
		}
		for _, e := range n.Edges {
			if g.Nodes[e].Type == IPin {
				incoming[e]++
			}
		}
	}
	for _, ip := range g.IPins(2, 2) {
		if incoming[ip] == 0 {
			t.Errorf("ipin %d unreachable from any wire", ip)
		}
	}
}

func TestDisjointSwitchBox(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	// Wire-to-wire edges must stay on the same track (disjoint pattern) and
	// be symmetric (pass transistors are bidirectional).
	edgeSet := make(map[[2]int]bool)
	for _, n := range g.Nodes {
		if n.Type != ChanX && n.Type != ChanY {
			continue
		}
		for _, e := range n.Edges {
			to := g.Nodes[e]
			if to.Type != ChanX && to.Type != ChanY {
				continue
			}
			if to.Track != n.Track {
				t.Fatalf("edge %d->%d crosses tracks %d->%d", n.ID, to.ID, n.Track, to.Track)
			}
			edgeSet[[2]int{n.ID, e}] = true
		}
	}
	for e := range edgeSet {
		if !edgeSet[[2]int{e[1], e[0]}] {
			t.Fatalf("switch edge %v not symmetric", e)
		}
	}
	if len(edgeSet) == 0 {
		t.Fatal("no switch-box edges")
	}
}

func TestFullConnectivitySourceToAnySink(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	// BFS from a corner-ish IO source must reach every sink in the fabric.
	src := g.SourceAt(0, 1)
	if src < 0 {
		t.Fatal("no IO source at (0,1)")
	}
	reach := make([]bool, len(g.Nodes))
	reach[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Nodes[u].Edges {
			if !reach[e] {
				reach[e] = true
				queue = append(queue, e)
			}
		}
	}
	for x := 0; x < g.GridWidth(); x++ {
		for y := 0; y < g.GridHeight(); y++ {
			if g.Kind(x, y) == SiteEmpty {
				continue
			}
			if snk := g.SinkAt(x, y); !reach[snk] {
				t.Errorf("sink at (%d,%d) unreachable", x, y)
			}
		}
	}
}

func TestFcFractional(t *testing.T) {
	a := smallArch()
	a.Routing.ChannelWidth = 8
	a.Routing.FcIn = 0.5
	a.Routing.FcOut = 0.25
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.OPins(2, 2) {
		wires := 0
		for _, e := range g.Nodes[op].Edges {
			if t := g.Nodes[e].Type; t == ChanX || t == ChanY {
				wires++
			}
		}
		if wires != 2 { // 0.25 * 8
			t.Errorf("opin wires = %d, want 2", wires)
		}
	}
}

func TestSegmentLength2(t *testing.T) {
	a := smallArch()
	a.Routing.SegmentLength = 2
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[int]int{}
	long := 0
	for _, n := range g.Nodes {
		if n.Type == ChanX || n.Type == ChanY {
			spans[n.Span]++
			if n.Span == 2 {
				long++
			}
			if n.Span < 1 || n.Span > 2 {
				t.Fatalf("wire span %d", n.Span)
			}
		}
	}
	if long == 0 {
		t.Fatal("no length-2 wires built")
	}
	// Longer wires have higher R and C than length-1.
	var r1, r2 float64
	for _, n := range g.Nodes {
		if n.Type == ChanX && n.Span == 1 {
			r1 = n.R
		}
		if n.Type == ChanX && n.Span == 2 {
			r2 = n.R
		}
	}
	if r2 <= r1 {
		t.Errorf("R(len2)=%g <= R(len1)=%g", r2, r1)
	}
}

func TestWireElectricalValues(t *testing.T) {
	a := smallArch()
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Type == ChanX || n.Type == ChanY {
			if n.R <= 0 || n.C <= 0 {
				t.Fatalf("wire %d has R=%g C=%g", n.ID, n.R, n.C)
			}
		}
	}
}

func TestIOSiteHasSingleChannel(t *testing.T) {
	g, err := Build(smallArch())
	if err != nil {
		t.Fatal(err)
	}
	// An IO pad on the left border can only reach the chany at x=0.
	for _, op := range g.OPins(0, 2) {
		for _, e := range g.Nodes[op].Edges {
			n := g.Nodes[e]
			if n.Type != ChanY || n.X != 0 {
				t.Errorf("left IO opin reaches %s at (%d,%d)", n.Type, n.X, n.Y)
			}
		}
	}
}

// TestGraphInvariantsProperty checks structural invariants across random
// architecture parameters.
func TestGraphInvariantsProperty(t *testing.T) {
	f := func(rowsRaw, colsRaw, wRaw, segRaw, fcRaw uint8) bool {
		a := arch.Paper()
		a.Rows = 1 + int(rowsRaw)%5
		a.Cols = 1 + int(colsRaw)%5
		a.Routing.ChannelWidth = 1 + int(wRaw)%12
		a.Routing.SegmentLength = 1 + int(segRaw)%4
		a.Routing.FcIn = 0.25 + float64(fcRaw%4)*0.25
		a.Routing.FcOut = a.Routing.FcIn
		g, err := Build(a)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		for _, n := range g.Nodes {
			if n.Capacity < 1 {
				t.Logf("node %d capacity %d", n.ID, n.Capacity)
				return false
			}
			for _, e := range n.Edges {
				if e < 0 || e >= len(g.Nodes) {
					t.Logf("node %d edge %d out of range", n.ID, e)
					return false
				}
			}
			switch n.Type {
			case ChanX, ChanY:
				if n.Track < 0 || n.Track >= g.W {
					t.Logf("wire %d track %d", n.ID, n.Track)
					return false
				}
				if n.Span < 1 || n.Span > a.Routing.SegmentLength {
					t.Logf("wire %d span %d", n.ID, n.Span)
					return false
				}
			case Sink:
				if len(n.Edges) != 0 {
					t.Logf("sink %d has out-edges", n.ID)
					return false
				}
			}
		}
		// Every CLB sink reachable from every CLB source (full connectivity
		// under any Fc >= 0.25 with the disjoint box at these sizes).
		src := g.SourceAt(1, 1)
		reach := make([]bool, len(g.Nodes))
		reach[src] = true
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Nodes[u].Edges {
				if !reach[e] {
					reach[e] = true
					queue = append(queue, e)
				}
			}
		}
		return reach[g.SinkAt(a.Cols, a.Rows)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
