package rrgraph

import (
	"sort"
	"sync"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/obs"
)

// Clone returns a graph that can be mutated freely — masked dead
// (MarkDead) or stripped of defective switch edges (RemoveEdge) — without
// touching the receiver. Node structs and their edge lists are copied;
// the immutable site lookup tables (kind, source/sink/pin indices, wire
// coordinate maps) and the cost lookahead summary are shared with the
// receiver, since nothing mutates them after Build (the lookahead's
// values are lower bounds, so they remain valid for a clone whose fabric
// is only ever shrunk by defect masking). Defect masks are NOT carried
// over: a clone always starts with a pristine fabric.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Arch:    g.Arch,
		W:       g.W,
		kind:    g.kind,
		source:  g.source,
		sink:    g.sink,
		opins:   g.opins,
		ipins:   g.ipins,
		chanxID: g.chanxID,
		chanyID: g.chanyID,
		edges:   g.edges,
		look:    g.look,
	}
	c.Nodes = make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		cp := *n
		cp.Edges = append([]int(nil), n.Edges...)
		c.Nodes[i] = &cp
	}
	return c
}

// Cache memoizes built routing-resource graphs keyed by the complete
// architecture fingerprint (arch.Format covers the grid, CLB geometry,
// routing parameters including channel width, and the technology constants
// that set node R/C values). The min-channel-width binary search and the
// hardened runner's retry/escalation path request the same (arch, W)
// graphs over and over; Build is by far the most expensive part of a
// routing trial, so reuse converts repeated trials into O(clone) work.
//
// Get always returns a Clone of the cached pristine graph: callers apply
// per-trial defect masks (fault.DefectMap.Apply) to their copy, and the
// cached original never sees a MarkDead or RemoveEdge. All methods are
// safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	tick    uint64
	hits    int64
	misses  int64
}

type cacheEntry struct {
	g    *Graph
	used uint64 // LRU stamp
}

// DefaultCacheSize bounds a NewCache(0) cache. A graph for a mid-size
// fabric is a few MB; a handful covers a min-W binary search plus the
// escalation widths the hardened runner revisits.
const DefaultCacheSize = 16

// NewCache creates a graph cache holding at most max graphs (0 or
// negative selects DefaultCacheSize). When full, the least recently used
// entry is evicted.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{max: max, entries: make(map[string]*cacheEntry)}
}

// Get returns a mutable clone of the graph for the architecture, building
// and caching the pristine original on first use. The hit/miss is counted
// on tr as rrgraph.cache_hits / rrgraph.cache_misses (tr may be nil).
// Safe on a nil cache: falls back to a plain Build (counted as a miss).
func (c *Cache) Get(a *arch.Arch, tr *obs.Trace) (*Graph, error) {
	if c == nil {
		return Build(a)
	}
	key := arch.Format(a)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.tick++
		e.used = c.tick
		c.hits++
		g := e.g
		c.mu.Unlock()
		tr.Add("rrgraph.cache_hits", 1)
		return g.Clone(), nil
	}
	c.mu.Unlock()

	// Build outside the lock: graph construction is the expensive part and
	// concurrent callers may want different architectures.
	g, err := Build(a)
	if err != nil {
		tr.Add("rrgraph.cache_misses", 1)
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	if _, ok := c.entries[key]; !ok {
		c.evictLocked()
		c.tick++
		c.entries[key] = &cacheEntry{g: g, used: c.tick}
	}
	c.mu.Unlock()
	tr.Add("rrgraph.cache_misses", 1)
	return g.Clone(), nil
}

// evictLocked removes the least recently used entry once the cache is at
// capacity. Caller holds c.mu. The scan walks keys in sorted order so the
// victim is deterministic even if use ticks ever tie.
func (c *Cache) evictLocked() {
	if len(c.entries) < c.max {
		return
	}
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	oldestKey := keys[0]
	for _, k := range keys[1:] {
		if c.entries[k].used < c.entries[oldestKey].used {
			oldestKey = k
		}
	}
	delete(c.entries, oldestKey)
}

// Stats returns lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached graphs.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
