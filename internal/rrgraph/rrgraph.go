// Package rrgraph builds the routing-resource graph of the island-style
// fabric: sources, sinks, block pins and channel wire segments, connected
// through connection boxes (Fc) and disjoint switch boxes (Fs=3), following
// the VPR model the paper's flow relies on. The graph is consumed by the
// PathFinder router, the timing analyzer, the power model and the bitstream
// generator.
package rrgraph

import (
	"fmt"
	"sort"

	"fpgaflow/internal/arch"
)

// NodeType classifies routing-resource nodes.
type NodeType int

const (
	// Source is the logical origin of a net inside a block.
	Source NodeType = iota
	// Sink is the logical destination inside a block.
	Sink
	// OPin is a physical block output pin.
	OPin
	// IPin is a physical block input pin.
	IPin
	// ChanX is a horizontal wire segment.
	ChanX
	// ChanY is a vertical wire segment.
	ChanY
)

func (t NodeType) String() string {
	switch t {
	case Source:
		return "SOURCE"
	case Sink:
		return "SINK"
	case OPin:
		return "OPIN"
	case IPin:
		return "IPIN"
	case ChanX:
		return "CHANX"
	case ChanY:
		return "CHANY"
	}
	return fmt.Sprintf("NodeType(%d)", int(t))
}

// SiteKind classifies grid locations.
type SiteKind int

const (
	// SiteEmpty marks corners of the I/O ring.
	SiteEmpty SiteKind = iota
	// SiteCLB is a logic tile.
	SiteCLB
	// SiteIO is a pad tile on the perimeter ring.
	SiteIO
)

// Node is one routing resource.
type Node struct {
	ID   int
	Type NodeType
	// X, Y locate the node: block coordinates for pins/sources/sinks, the
	// low tile coordinate for wires.
	X, Y int
	// Span is the number of tiles a wire covers (SegmentLength clipped at
	// the fabric edge); 0 for non-wires.
	Span int
	// Track is the channel track index for wires, -1 otherwise.
	Track int
	// Pin is the block pin index for IPin/OPin, -1 otherwise.
	Pin int
	// Capacity is the legal number of nets through this node.
	Capacity int
	// R is the driving-point resistance of the resource, C its capacitance.
	R, C float64
	// Edges lists the IDs of nodes reachable from this one.
	Edges []int
}

// Graph is the complete routing-resource graph plus site metadata.
type Graph struct {
	Arch  *arch.Arch
	Nodes []*Node
	// W is the channel width the graph was built with.
	W int

	// site lookup tables
	kind    [][]SiteKind
	source  [][]int
	sink    [][]int
	opins   [][][]int // [x][y][localOutputPin] -> node id
	ipins   [][][]int
	chanxID map[chanKey]int
	chanyID map[chanKey]int
	edges   int

	// dead marks nodes masked out as defective fabric (fault injection /
	// known-bad dies); nil when the fabric is pristine. Dead nodes stay in
	// the graph so node IDs and the bitstream's canonical bit enumeration
	// are unchanged, but the router must not use them.
	dead []bool
	// deadCount caches the number of marked nodes.
	deadCount int

	// look is the per-segment-type cost lookahead summary built once per
	// graph (immutable, shared by clones — see Lookahead).
	look *Lookahead
}

// Lookahead is the per-segment-type delay/cost summary the router's A*
// search derives its admissible cost-to-target lower bounds from. It is
// built once per routing-resource graph during Build and shared by every
// Clone, so graphs served from a Cache carry it for free: a cache hit
// hands the router both the fabric and its precomputed lookahead.
//
// All values are lower bounds over the pristine fabric. Masking nodes
// dead or removing switch edges only shrinks the graph, so the bounds
// stay admissible for defective fabrics; congestion (present/history
// factors) only raises node costs above their base, so they stay
// admissible across PathFinder iterations.
type Lookahead struct {
	// MaxSpan is the longest wire span in tiles (segment length clipped at
	// the fabric edge): an upper bound on the tiles one wire hop advances.
	MaxSpan int
	// MinWireRC is the smallest R*C product over all channel wires: the
	// floor for any delay-driven wire base cost.
	MinWireRC float64
	// MinRCBySpan maps each wire span class to the smallest R*C product of
	// wires with that span (the per-segment-type delay table).
	MinRCBySpan map[int]float64
	// Wires is the number of channel wire nodes (0 disables lookahead:
	// a fabric with no wires has nothing to estimate over).
	Wires int

	// Exact wire-hop distance tables, built for unit-length segments (the
	// paper architecture). The disjoint switch box never changes a path's
	// track, and for SegmentLength 1 every track's channel graph is the
	// same translation-invariant lattice, so the minimum number of wire
	// nodes between a wire and a target block depends only on the
	// orientation and the (dx, dy) offset. distX/distY hold a BFS over
	// that lattice on an unbounded virtual fabric: the real fabric is a
	// subgraph (edges clip wires away, defects remove more), so the table
	// never overestimates the hops a real path needs — which keeps the
	// A* bound admissible — while being exact away from the fabric edge.
	distX, distY []uint16
	offX, offY   int // table center: index = (dx+offX) + (dy+offY)*nx
	nx, ny       int
}

// hopsUnreachable marks offsets the hop-table BFS never reached.
const hopsUnreachable = ^uint16(0)

// WireHops returns the minimum number of further wire nodes needed from a
// wire at offset (dx, dy) = (wire - target block) to reach a channel
// adjacent to the target block, for a vertical (ChanY) or horizontal
// (ChanX) wire. ok is false when no exact table exists (SegmentLength >
// 1) or the offset falls outside it; callers fall back to an analytic
// bound.
func (lk *Lookahead) WireHops(vertical bool, dx, dy int) (int, bool) {
	if lk.distX == nil {
		return 0, false
	}
	ix, iy := dx+lk.offX, dy+lk.offY
	if ix < 0 || ix >= lk.nx || iy < 0 || iy >= lk.ny {
		return 0, false
	}
	t := lk.distX
	if vertical {
		t = lk.distY
	}
	d := t[ix+iy*lk.nx]
	if d == hopsUnreachable {
		return 0, false
	}
	return int(d), true
}

// BlockHops returns the minimum number of wire nodes on any path between
// a pin of a block at offset (dx, dy) from the target block and a channel
// adjacent to the target block: one hop onto the cheapest of the source
// block's four adjacent channel positions, plus that wire's table
// distance.
func (lk *Lookahead) BlockHops(dx, dy int) (int, bool) {
	if lk.distX == nil {
		return 0, false
	}
	best, any := 0, false
	try := func(h int, ok bool) {
		if ok && (!any || h < best) {
			best, any = h, true
		}
	}
	// channelsAdjacent order: chanx below/above, chany left/right.
	try(lk.WireHops(false, dx, dy-1))
	try(lk.WireHops(false, dx, dy))
	try(lk.WireHops(true, dx-1, dy))
	try(lk.WireHops(true, dx, dy))
	if !any {
		return 0, false
	}
	return best + 1, true
}

// Lookahead returns the graph's cost-lookahead summary (never nil for a
// graph produced by Build or Clone).
func (g *Graph) Lookahead() *Lookahead { return g.look }

// buildLookahead scans the wire nodes once and fills g.look.
func (g *Graph) buildLookahead() {
	lk := &Lookahead{MinRCBySpan: make(map[int]float64)}
	for _, n := range g.Nodes {
		if n.Type != ChanX && n.Type != ChanY {
			continue
		}
		lk.Wires++
		if n.Span > lk.MaxSpan {
			lk.MaxSpan = n.Span
		}
		rc := n.R * n.C
		if lk.Wires == 1 || rc < lk.MinWireRC {
			lk.MinWireRC = rc
		}
		if cur, ok := lk.MinRCBySpan[n.Span]; !ok || rc < cur {
			lk.MinRCBySpan[n.Span] = rc
		}
	}
	if g.Arch.Routing.SegmentLength == 1 && lk.Wires > 0 {
		lk.buildHopTables(g.Arch.Cols, g.Arch.Rows)
	}
	g.look = lk
}

// buildHopTables runs the translation-invariant BFS behind WireHops. The
// virtual lattice is padded a few tiles past the largest queried offset
// so near-edge detours resolve inside the table; one flat uint16 grid per
// wire orientation, a few hundred KB at most.
func (lk *Lookahead) buildHopTables(cols, rows int) {
	const pad = 4
	lk.offX, lk.offY = cols+pad, rows+1+pad
	lk.nx, lk.ny = 2*lk.offX+1, 2*lk.offY+1
	n := lk.nx * lk.ny
	lk.distX = make([]uint16, n)
	lk.distY = make([]uint16, n)
	for i := range lk.distX {
		lk.distX[i] = hopsUnreachable
		lk.distY[i] = hopsUnreachable
	}
	idx := func(dx, dy int) (int, bool) {
		ix, iy := dx+lk.offX, dy+lk.offY
		if ix < 0 || ix >= lk.nx || iy < 0 || iy >= lk.ny {
			return 0, false
		}
		return ix + iy*lk.nx, true
	}
	type state struct {
		vertical bool
		dx, dy   int
	}
	var queue []state
	seed := func(vertical bool, dx, dy int) {
		t := lk.distX
		if vertical {
			t = lk.distY
		}
		if i, ok := idx(dx, dy); ok && t[i] == hopsUnreachable {
			t[i] = 0
			queue = append(queue, state{vertical, dx, dy})
		}
	}
	// Distance 0: the four channel positions adjacent to the target block
	// at the origin (chanx below/above, chany left/right) — a wire there
	// can feed the block's input pins directly.
	seed(false, 0, -1)
	seed(false, 0, 0)
	seed(true, -1, 0)
	seed(true, 0, 0)
	relax := func(d uint16, vertical bool, dx, dy int) {
		t := lk.distX
		if vertical {
			t = lk.distY
		}
		if i, ok := idx(dx, dy); ok && d+1 < t[i] {
			t[i] = d + 1
			queue = append(queue, state{vertical, dx, dy})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		var d uint16
		if i, _ := idx(s.dx, s.dy); s.vertical {
			d = lk.distY[i]
		} else {
			d = lk.distX[i]
		}
		// The BFS runs backward, but every switch-box connection is a
		// bidirectional pass transistor, so forward adjacency applies. A
		// chanx wire at (x, y) touches switch points (x-1, y) and (x, y);
		// each switch point (px, py) joins chanx (px, py), (px+1, py) and
		// chany (px, py), (px, py+1) on the same track.
		if !s.vertical {
			relax(d, false, s.dx-1, s.dy)
			relax(d, false, s.dx+1, s.dy)
			relax(d, true, s.dx-1, s.dy)
			relax(d, true, s.dx-1, s.dy+1)
			relax(d, true, s.dx, s.dy)
			relax(d, true, s.dx, s.dy+1)
		} else {
			relax(d, true, s.dx, s.dy-1)
			relax(d, true, s.dx, s.dy+1)
			relax(d, false, s.dx, s.dy-1)
			relax(d, false, s.dx+1, s.dy-1)
			relax(d, false, s.dx, s.dy)
			relax(d, false, s.dx+1, s.dy)
		}
	}
}

type chanKey struct{ x, y, track int }

// Kind returns the site kind at grid location (x, y); the full grid spans
// x in [0, Cols+1], y in [0, Rows+1].
func (g *Graph) Kind(x, y int) SiteKind { return g.kind[x][y] }

// SourceAt returns the source node ID of the block at (x, y), or -1.
func (g *Graph) SourceAt(x, y int) int { return g.source[x][y] }

// SinkAt returns the sink node ID of the block at (x, y), or -1.
func (g *Graph) SinkAt(x, y int) int { return g.sink[x][y] }

// OPins returns the output-pin node IDs of the block at (x, y).
func (g *Graph) OPins(x, y int) []int { return g.opins[x][y] }

// IPins returns the input-pin node IDs of the block at (x, y).
func (g *Graph) IPins(x, y int) []int { return g.ipins[x][y] }

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int { return g.edges }

// MarkDead masks node id as defective. The node keeps its ID (bitstream
// enumeration is unchanged) but the router refuses to expand through it and
// route validation rejects paths that touch it.
func (g *Graph) MarkDead(id int) {
	if id < 0 || id >= len(g.Nodes) {
		return
	}
	if g.dead == nil {
		g.dead = make([]bool, len(g.Nodes))
	}
	if !g.dead[id] {
		g.dead[id] = true
		g.deadCount++
	}
}

// Dead reports whether node id is masked as defective.
func (g *Graph) Dead(id int) bool {
	return g.dead != nil && id >= 0 && id < len(g.dead) && g.dead[id]
}

// DeadCount returns the number of nodes masked as defective.
func (g *Graph) DeadCount() int { return g.deadCount }

// RemoveEdge deletes the directed edge from -> to (a defective programmable
// switch), reporting whether it existed.
func (g *Graph) RemoveEdge(from, to int) bool {
	if from < 0 || from >= len(g.Nodes) {
		return false
	}
	edges := g.Nodes[from].Edges
	for i, e := range edges {
		if e == to {
			g.Nodes[from].Edges = append(edges[:i], edges[i+1:]...)
			g.edges--
			return true
		}
	}
	return false
}

// WireID returns the node ID of the channel wire covering tile (x, y) on
// the given track: a ChanY wire when vertical, ChanX otherwise. The second
// result is false when no such wire exists (off-fabric coordinates or a
// track beyond the built channel width).
func (g *Graph) WireID(vertical bool, x, y, track int) (int, bool) {
	if vertical {
		id, ok := g.chanyID[chanKey{x, y, track}]
		return id, ok
	}
	id, ok := g.chanxID[chanKey{x, y, track}]
	return id, ok
}

// SwitchPointWires returns the distinct wire nodes incident to the switch
// point (x, y) on the given track under the disjoint switch pattern:
// the horizontal wires covering tiles x and x+1 at height y and the
// vertical wires covering tiles y and y+1 at column x.
func (g *Graph) SwitchPointWires(x, y, track int) []int {
	var ids []int
	add := func(id int, ok bool) {
		if !ok {
			return
		}
		for _, e := range ids {
			if e == id {
				return
			}
		}
		ids = append(ids, id)
	}
	add(g.WireID(false, x, y, track))
	add(g.WireID(false, x+1, y, track))
	add(g.WireID(true, x, y, track))
	add(g.WireID(true, x, y+1, track))
	return ids
}

// HasEdge reports whether the directed edge from -> to exists. Both IDs
// must be valid node indices.
func (g *Graph) HasEdge(from, to int) bool {
	for _, e := range g.Nodes[from].Edges {
		if e == to {
			return true
		}
	}
	return false
}

// GridWidth and GridHeight return the full grid extent including I/O ring.
func (g *Graph) GridWidth() int  { return g.Arch.Cols + 2 }
func (g *Graph) GridHeight() int { return g.Arch.Rows + 2 }

// Build constructs the routing-resource graph for the architecture.
func Build(a *arch.Arch) (*Graph, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		Arch:    a,
		W:       a.Routing.ChannelWidth,
		chanxID: make(map[chanKey]int),
		chanyID: make(map[chanKey]int),
	}
	cols, rows := a.Cols, a.Rows
	gw, gh := cols+2, rows+2
	g.kind = make([][]SiteKind, gw)
	g.source = make([][]int, gw)
	g.sink = make([][]int, gw)
	g.opins = make([][][]int, gw)
	g.ipins = make([][][]int, gw)
	for x := 0; x < gw; x++ {
		g.kind[x] = make([]SiteKind, gh)
		g.source[x] = make([]int, gh)
		g.sink[x] = make([]int, gh)
		g.opins[x] = make([][]int, gh)
		g.ipins[x] = make([][]int, gh)
		for y := 0; y < gh; y++ {
			g.source[x][y], g.sink[x][y] = -1, -1
			switch {
			case x >= 1 && x <= cols && y >= 1 && y <= rows:
				g.kind[x][y] = SiteCLB
			case (x == 0 || x == cols+1) != (y == 0 || y == rows+1):
				g.kind[x][y] = SiteIO
			default:
				g.kind[x][y] = SiteEmpty
			}
		}
	}

	g.buildBlockNodes()
	g.buildWires()
	g.buildConnectionBoxes()
	g.buildSwitchBoxes()
	g.buildLookahead()
	for _, n := range g.Nodes {
		g.edges += len(n.Edges)
	}
	return g, nil
}

func (g *Graph) newNode(t NodeType, x, y int) *Node {
	n := &Node{ID: len(g.Nodes), Type: t, X: x, Y: y, Track: -1, Pin: -1, Capacity: 1}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) addEdge(from, to int) {
	g.Nodes[from].Edges = append(g.Nodes[from].Edges, to)
}

// buildBlockNodes creates source/sink/pin nodes for every CLB and IO site.
func (g *Graph) buildBlockNodes() {
	a := g.Arch
	tech := a.Tech
	for x := 0; x < g.GridWidth(); x++ {
		for y := 0; y < g.GridHeight(); y++ {
			switch g.kind[x][y] {
			case SiteCLB:
				src := g.newNode(Source, x, y)
				src.Capacity = a.CLB.Outputs()
				g.source[x][y] = src.ID
				snk := g.newNode(Sink, x, y)
				snk.Capacity = a.CLB.I
				g.sink[x][y] = snk.ID
				for p := 0; p < a.CLB.Outputs(); p++ {
					op := g.newNode(OPin, x, y)
					op.Pin = a.CLB.I + p
					op.R = tech.RonMin // output buffer drive
					op.C = tech.CDiffMin
					g.opins[x][y] = append(g.opins[x][y], op.ID)
					g.addEdge(src.ID, op.ID)
				}
				for p := 0; p < a.CLB.I; p++ {
					ip := g.newNode(IPin, x, y)
					ip.Pin = p
					ip.C = tech.CGateMin * 4 // input buffer + local mux load
					g.ipins[x][y] = append(g.ipins[x][y], ip.ID)
					g.addEdge(ip.ID, snk.ID)
				}
			case SiteIO:
				src := g.newNode(Source, x, y)
				src.Capacity = a.IORate
				g.source[x][y] = src.ID
				snk := g.newNode(Sink, x, y)
				snk.Capacity = a.IORate
				g.sink[x][y] = snk.ID
				// One OPin/IPin pair per pad sub-slot so the bitstream can
				// attribute each routed net to a specific pad.
				for s := 0; s < a.IORate; s++ {
					op := g.newNode(OPin, x, y)
					op.Pin = s
					op.R = tech.RonMin
					op.C = tech.CDiffMin
					g.opins[x][y] = append(g.opins[x][y], op.ID)
					g.addEdge(src.ID, op.ID)
					ip := g.newNode(IPin, x, y)
					ip.Pin = s
					ip.C = tech.CGateMin * 4
					g.ipins[x][y] = append(g.ipins[x][y], ip.ID)
					g.addEdge(ip.ID, snk.ID)
				}
			}
		}
	}
}

// buildWires creates the channel segments with staggered starts.
func (g *Graph) buildWires() {
	a := g.Arch
	L := a.Routing.SegmentLength
	wm, sm := a.Routing.WireWidthMult, a.Routing.WireSpacingMult
	// Horizontal channels: y in 0..Rows, tiles x in 1..Cols.
	for y := 0; y <= a.Rows; y++ {
		for t := 0; t < g.W; t++ {
			start := 1
			if L > 1 {
				// Stagger so wire boundaries differ per track.
				off := t % L
				start = 1 - off
			}
			for x0 := start; x0 <= a.Cols; x0 += L {
				lo := x0
				if lo < 1 {
					lo = 1
				}
				hi := x0 + L - 1
				if hi > a.Cols {
					hi = a.Cols
				}
				if lo > hi {
					continue
				}
				n := g.newNode(ChanX, lo, y)
				n.Span = hi - lo + 1
				n.Track = t
				n.R = a.Tech.WireRes(float64(n.Span), wm)
				n.C = a.Tech.WireCap(float64(n.Span), wm, sm)
				for x := lo; x <= hi; x++ {
					g.chanxID[chanKey{x, y, t}] = n.ID
				}
			}
		}
	}
	// Vertical channels: x in 0..Cols, tiles y in 1..Rows.
	for x := 0; x <= a.Cols; x++ {
		for t := 0; t < g.W; t++ {
			start := 1
			if L > 1 {
				off := t % L
				start = 1 - off
			}
			for y0 := start; y0 <= a.Rows; y0 += L {
				lo := y0
				if lo < 1 {
					lo = 1
				}
				hi := y0 + L - 1
				if hi > a.Rows {
					hi = a.Rows
				}
				if lo > hi {
					continue
				}
				n := g.newNode(ChanY, x, lo)
				n.Span = hi - lo + 1
				n.Track = t
				n.R = a.Tech.WireRes(float64(n.Span), wm)
				n.C = a.Tech.WireCap(float64(n.Span), wm, sm)
				for y := lo; y <= hi; y++ {
					g.chanyID[chanKey{x, y, t}] = n.ID
				}
			}
		}
	}
}

// fcTracks returns the track indices a pin connects to given flexibility fc,
// spreading the choices with a per-pin offset.
func (g *Graph) fcTracks(fc float64, pin int) []int {
	n := int(fc*float64(g.W) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > g.W {
		n = g.W
	}
	tracks := make([]int, 0, n)
	for i := 0; i < n; i++ {
		tracks = append(tracks, (pin+i*g.W/n)%g.W)
	}
	return tracks
}

// channelsAdjacent lists the (isX, x, y) channel coordinates bordering the
// block at (x, y).
func (g *Graph) channelsAdjacent(x, y int) [][3]int {
	a := g.Arch
	var out [][3]int
	// chanx below (y-1) and above (y); chanx spans tiles x in 1..Cols.
	if x >= 1 && x <= a.Cols {
		if y-1 >= 0 && y-1 <= a.Rows {
			out = append(out, [3]int{1, x, y - 1})
		}
		if y >= 0 && y <= a.Rows {
			out = append(out, [3]int{1, x, y})
		}
	}
	// chany left (x-1) and right (x); chany spans tiles y in 1..Rows.
	if y >= 1 && y <= a.Rows {
		if x-1 >= 0 && x-1 <= a.Cols {
			out = append(out, [3]int{0, x - 1, y})
		}
		if x >= 0 && x <= a.Cols {
			out = append(out, [3]int{0, x, y})
		}
	}
	return out
}

func (g *Graph) wireAt(isX int, x, y, track int) (int, bool) {
	if isX == 1 {
		id, ok := g.chanxID[chanKey{x, y, track}]
		return id, ok
	}
	id, ok := g.chanyID[chanKey{x, y, track}]
	return id, ok
}

// buildConnectionBoxes wires OPins onto tracks and tracks onto IPins.
// Pins are distributed round-robin over the block's adjacent channels.
func (g *Graph) buildConnectionBoxes() {
	a := g.Arch
	for x := 0; x < g.GridWidth(); x++ {
		for y := 0; y < g.GridHeight(); y++ {
			if g.kind[x][y] == SiteEmpty {
				continue
			}
			chans := g.channelsAdjacent(x, y)
			if len(chans) == 0 {
				continue
			}
			for pi, opID := range g.opins[x][y] {
				op := g.Nodes[opID]
				ch := chans[pi%len(chans)]
				for _, t := range g.fcTracks(a.Routing.FcOut, op.Pin) {
					if wid, ok := g.wireAt(ch[0], ch[1], ch[2], t); ok {
						g.addEdge(opID, wid)
					}
				}
			}
			for pi, ipID := range g.ipins[x][y] {
				ip := g.Nodes[ipID]
				ch := chans[pi%len(chans)]
				for _, t := range g.fcTracks(a.Routing.FcIn, ip.Pin) {
					if wid, ok := g.wireAt(ch[0], ch[1], ch[2], t); ok {
						g.addEdge(wid, ipID)
					}
				}
			}
		}
	}
}

// buildSwitchBoxes connects wires through the disjoint switch pattern: at
// every switch point, all incident wires with the same track index
// interconnect bidirectionally (pass-transistor switches conduct both ways).
func (g *Graph) buildSwitchBoxes() {
	type pt struct{ x, y, t int }
	incident := make(map[pt][]int)
	add := func(x, y, t, id int) {
		p := pt{x, y, t}
		for _, e := range incident[p] {
			if e == id {
				return
			}
		}
		incident[p] = append(incident[p], id)
	}
	// A chanx wire spanning tiles [lo,hi] at height y touches switch points
	// (lo-1, y) .. (hi, y). A chany wire spanning [lo,hi] at column x
	// touches (x, lo-1) .. (x, hi).
	seen := make(map[int]bool)
	for _, key := range sortedChanKeys(g.chanxID) {
		id := g.chanxID[key]
		if seen[id] {
			continue
		}
		seen[id] = true
		n := g.Nodes[id]
		for sx := n.X - 1; sx <= n.X+n.Span-1; sx++ {
			add(sx, n.Y, n.Track, id)
		}
	}
	for _, key := range sortedChanKeys(g.chanyID) {
		id := g.chanyID[key]
		if seen[id] {
			continue
		}
		seen[id] = true
		n := g.Nodes[id]
		for sy := n.Y - 1; sy <= n.Y+n.Span-1; sy++ {
			add(n.X, sy, n.Track, id)
		}
	}
	// Iterate switch points in sorted order: the edge lists (and therefore
	// the bitstream's canonical configuration-bit enumeration) must be
	// identical across builds of the same architecture.
	points := make([]pt, 0, len(incident))
	for p := range incident {
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.t < b.t
	})
	connected := make(map[[2]int]bool)
	for _, p := range points {
		ids := incident[p]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if connected[k] {
					continue
				}
				connected[k] = true
				g.addEdge(a, b)
				g.addEdge(b, a)
			}
		}
	}
}

func sortedChanKeys(m map[chanKey]int) []chanKey {
	keys := make([]chanKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.track < b.track
	})
	return keys
}
