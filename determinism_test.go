package fpgaflow

// Worker-count invariance suite: the parallel router's and annealer's
// contract is that GOMAXPROCS and the -j worker knob change only
// wall-clock time, never the result. Each example is compiled under
// several (GOMAXPROCS, workers) configurations and the serialized route
// trees, placements, and encoded bitstreams must be byte-identical. The
// CI race job runs this file under -race, so the parallel search and
// move-evaluation phases are also exercised for data races.

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

func TestRoutingDeterminismAcrossWorkers(t *testing.T) {
	configs := []struct {
		gomaxprocs int
		workers    int // 0 = GOMAXPROCS (the -j default)
	}{
		{1, 0},
		{4, 0},
		{8, 0},
		{4, 1},
		{4, 8},
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			var refTrees, refBits []byte
			for _, cfg := range configs {
				runtime.GOMAXPROCS(cfg.gomaxprocs)
				res, err := Run(src, Options{Seed: 1, SkipVerify: true, RouteWorkers: cfg.workers, PlaceWorkers: cfg.workers})
				if err != nil {
					t.Fatalf("GOMAXPROCS=%d -j %d: %v", cfg.gomaxprocs, cfg.workers, err)
				}
				trees, err := json.Marshal(res.Routed.Routes)
				if err != nil {
					t.Fatal(err)
				}
				if refTrees == nil {
					refTrees, refBits = trees, res.Encoded
					continue
				}
				if !bytes.Equal(trees, refTrees) {
					t.Errorf("GOMAXPROCS=%d -j %d: route trees differ from GOMAXPROCS=1 run",
						cfg.gomaxprocs, cfg.workers)
				}
				if !bytes.Equal(res.Encoded, refBits) {
					t.Errorf("GOMAXPROCS=%d -j %d: bitstream differs from GOMAXPROCS=1 run",
						cfg.gomaxprocs, cfg.workers)
				}
			}
		})
	}
}

// TestRouteWorkersDeterminismMinDelay sweeps the router worker knob under
// the min-delay profile: the criticality-aware PathFinder recomputes
// per-net slack from the committed routing after every iteration, and that
// recompute must be a pure function of the (worker-count-independent)
// committed routes — so route trees and bitstreams stay byte-identical for
// -j 1/2/4/8 exactly as in the wirelength-driven mode.
func TestRouteWorkersDeterminismMinDelay(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			var refTrees, refBits []byte
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(src, Options{Seed: 1, Profile: ProfileMinDelay, SkipVerify: true,
					RouteWorkers: workers, PlaceWorkers: 1})
				if err != nil {
					t.Fatalf("min-delay route workers=%d: %v", workers, err)
				}
				trees, err := json.Marshal(res.Routed.Routes)
				if err != nil {
					t.Fatal(err)
				}
				if refTrees == nil {
					refTrees, refBits = trees, res.Encoded
					continue
				}
				if !bytes.Equal(trees, refTrees) {
					t.Errorf("min-delay route workers=%d: route trees differ from workers=1 run", workers)
				}
				if !bytes.Equal(res.Encoded, refBits) {
					t.Errorf("min-delay route workers=%d: bitstream differs from workers=1 run", workers)
				}
			}
		})
	}
}

// TestPlaceWorkersDeterminismMinDelay sweeps the annealer worker knob
// under the min-delay profile (timing-driven placement weights active,
// routing pinned serial): bit-identical placements and bitstreams for
// every -j value.
func TestPlaceWorkersDeterminismMinDelay(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			var refLoc, refBits []byte
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(src, Options{Seed: 1, Profile: ProfileMinDelay, SkipVerify: true,
					RouteWorkers: 1, PlaceWorkers: workers})
				if err != nil {
					t.Fatalf("min-delay place workers=%d: %v", workers, err)
				}
				loc, err := json.Marshal(res.Placed.Loc)
				if err != nil {
					t.Fatal(err)
				}
				if refLoc == nil {
					refLoc, refBits = loc, res.Encoded
					continue
				}
				if !bytes.Equal(loc, refLoc) {
					t.Errorf("min-delay place workers=%d: placement differs from workers=1 run", workers)
				}
				if !bytes.Equal(res.Encoded, refBits) {
					t.Errorf("min-delay place workers=%d: bitstream differs from workers=1 run", workers)
				}
			}
		})
	}
}

// TestPlacementDeterminismAcrossWorkers sweeps the annealer worker knob in
// isolation (routing pinned serial) and requires the bit-identical
// placement and bitstream from every value on every golden design.
func TestPlacementDeterminismAcrossWorkers(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			var refLoc, refBits []byte
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(src, Options{Seed: 1, SkipVerify: true, RouteWorkers: 1, PlaceWorkers: workers})
				if err != nil {
					t.Fatalf("place workers=%d: %v", workers, err)
				}
				loc, err := json.Marshal(res.Placed.Loc)
				if err != nil {
					t.Fatal(err)
				}
				if refLoc == nil {
					refLoc, refBits = loc, res.Encoded
					continue
				}
				if !bytes.Equal(loc, refLoc) {
					t.Errorf("place workers=%d: placement differs from workers=1 run", workers)
				}
				if !bytes.Equal(res.Encoded, refBits) {
					t.Errorf("place workers=%d: bitstream differs from workers=1 run", workers)
				}
			}
		})
	}
}
