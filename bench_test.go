package fpgaflow

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the index). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark wraps the corresponding experiment; -v output of the
// companion TestReproduce* functions prints the paper-style rows.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuit"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/experiments"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// sink prevents dead-code elimination.
var sink interface{}

// BenchmarkTable1DETFF regenerates Table 1: DETFF energy/delay/EDP.
func BenchmarkTable1DETFF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := circuit.Table1(arch.STM018())
		if err != nil {
			b.Fatal(err)
		}
		sink = rows
	}
}

// BenchmarkTable2GatedClockBLE regenerates Table 2: BLE-level clock gating.
func BenchmarkTable2GatedClockBLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := circuit.Table2(arch.STM018())
		if err != nil {
			b.Fatal(err)
		}
		sink = rows
	}
}

// BenchmarkTable3GatedClockCLB regenerates Table 3: CLB-level clock gating.
func BenchmarkTable3GatedClockCLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := circuit.Table3(arch.STM018(), 5)
		if err != nil {
			b.Fatal(err)
		}
		sink = rows
	}
}

// BenchmarkFig8PassTransistorSweep regenerates Fig 8 (min width, min
// spacing): EDA vs switch width for wire lengths 1/2/4/8.
func BenchmarkFig8PassTransistorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = circuit.Fig8(arch.STM018())
	}
}

// BenchmarkFig9PassTransistorSweep regenerates Fig 9 (min width, double
// spacing).
func BenchmarkFig9PassTransistorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = circuit.Fig9(arch.STM018())
	}
}

// BenchmarkFig10PassTransistorSweep regenerates Fig 10 (double width,
// double spacing).
func BenchmarkFig10PassTransistorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = circuit.Fig10(arch.STM018())
	}
}

// BenchmarkTriStateBufferSweep regenerates the §3.3.2 tri-state buffer
// exploration.
func BenchmarkTriStateBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = circuit.TriStateSweep(arch.STM018(), circuit.MinWidthDblSpacing(), 1)
	}
}

// BenchmarkExploreLUTSize regenerates the §3.1 K exploration (K=4 optimum).
func BenchmarkExploreLUTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ExploreLUTSize(io.Discard, circuits.SmallSuite(), 1)
		if err != nil {
			b.Fatal(err)
		}
		sink = pts
	}
}

// BenchmarkExploreClusterSize regenerates the §3.1 N exploration (N=5
// optimum).
func BenchmarkExploreClusterSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ExploreClusterSize(io.Discard, circuits.SmallSuite(), 1)
		if err != nil {
			b.Fatal(err)
		}
		sink = pts
	}
}

// BenchmarkExploreClusterInputs regenerates the Eq. (1) utilization sweep.
func BenchmarkExploreClusterInputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ExploreClusterInputs(io.Discard, circuits.SmallSuite())
		if err != nil {
			b.Fatal(err)
		}
		sink = pts
	}
}

// BenchmarkFullFlow runs the complete VHDL-to-bitstream flow per benchmark
// circuit (the paper's §4 flow; verification off to time the tools alone).
func BenchmarkFullFlow(b *testing.B) {
	for _, bench := range circuits.SmallSuite() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(bench.VHDL, Options{Seed: 1, SkipVerify: true, ClockHz: 100e6})
				if err != nil {
					b.Fatal(err)
				}
				sink = res
			}
		})
	}
}

// BenchmarkMapperAblation compares FlowMap against the greedy baseline
// through the full flow (design-choice ablation from DESIGN.md).
func BenchmarkMapperAblation(b *testing.B) {
	src := circuits.RandomLogic(10, 40, 2).VHDL
	b.Run("flowmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(src, Options{Seed: 1, SkipVerify: true, Mapper: MapFlowMap, ClockHz: 100e6})
			if err != nil {
				b.Fatal(err)
			}
			sink = res
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(src, Options{Seed: 1, SkipVerify: true, Mapper: MapGreedy, ClockHz: 100e6})
			if err != nil {
				b.Fatal(err)
			}
			sink = res
		}
	})
}

// BenchmarkGatedClockAblation measures the flow-level power with and
// without the gated clock (the architecture feature Tables 2-3 motivate).
func BenchmarkGatedClockAblation(b *testing.B) {
	src := circuits.Counter(8).VHDL
	run := func(b *testing.B, gated bool) {
		a := arch.Paper()
		a.CLB.GatedClock = gated
		for i := 0; i < b.N; i++ {
			res, err := Run(src, Options{Seed: 1, SkipVerify: true, Arch: a, AutoSizeGrid: true, ClockHz: 100e6})
			if err != nil {
				b.Fatal(err)
			}
			sink = res
		}
	}
	b.Run("gated", func(b *testing.B) { run(b, true) })
	b.Run("ungated", func(b *testing.B) { run(b, false) })
}

// placedRand64 packs and places the largest committed example
// (examples/netlists/rand64.blif) for the routing benchmarks.
func placedRand64(b *testing.B) (*place.Problem, *place.Placement) {
	b.Helper()
	src, err := os.ReadFile("examples/netlists/rand64.blif")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := netlist.ParseBLIF(string(src))
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Paper()
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		b.Fatal(err)
	}
	p, err := place.NewProblem(a, pk)
	if err != nil {
		b.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 1, InnerNum: 1})
	if err != nil {
		b.Fatal(err)
	}
	return p, pl
}

// BenchmarkRoute measures the parallel PathFinder on the largest committed
// example at several worker counts. The routing result is identical across
// the sub-benchmarks (the determinism suite asserts it); only wall time may
// differ, which is the number this benchmark records — the j1/j8 ratio is
// the routing speedup the parallel search phase buys on this machine.
func BenchmarkRoute(b *testing.B) {
	p, pl := placedRand64(b)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := route.Route(p, pl, g, route.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !r.Success {
					b.Fatalf("unroutable: %d overused", r.Overused)
				}
				sink = r
			}
		})
	}
}

// BenchmarkAnneal measures the parallel annealer on the largest committed
// example at several worker counts. The placement is bit-identical across
// the sub-benchmarks (the determinism suite asserts it); the j1/j8 ratio
// is the wall-time speedup the snapshot-evaluate/ordered-commit batching
// buys on this machine.
func BenchmarkAnneal(b *testing.B) {
	p, _ := placedRand64(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl, err := place.Place(p, place.Options{Seed: 1, InnerNum: 1, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				sink = pl
			}
		})
	}
}

// BenchmarkRRGraphBuild measures routing-resource graph construction for
// the rand64 fabric — the cost the RR-graph cache exists to avoid.
func BenchmarkRRGraphBuild(b *testing.B) {
	p, _ := placedRand64(b)
	for i := 0; i < b.N; i++ {
		g, err := rrgraph.Build(p.Arch)
		if err != nil {
			b.Fatal(err)
		}
		sink = g
	}
}

// BenchmarkRRGraphCacheGet measures a cache hit (clone of the cached
// pristine graph), the steady-state cost of every width trial after the
// first in a min-channel-width search or hardened retry.
func BenchmarkRRGraphCacheGet(b *testing.B) {
	p, _ := placedRand64(b)
	cache := rrgraph.NewCache(0)
	if _, err := cache.Get(p.Arch, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := cache.Get(p.Arch, nil)
		if err != nil {
			b.Fatal(err)
		}
		sink = g
	}
}

// TestReproduceAll prints every paper table/figure in one pass; run with
// go test -run TestReproduceAll -v .
func TestReproduceAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction pass")
	}
	w := os.Stdout
	if _, err := experiments.Table1(w); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Table2(w); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Table3(w); err != nil {
		t.Fatal(err)
	}
	experiments.Fig8(w)
	experiments.Fig9(w)
	experiments.Fig10(w)
	experiments.TriState(w)
	if _, err := experiments.ExploreClusterInputs(w, circuits.SmallSuite()); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.PaperVsBaseline(w, circuits.SmallSuite(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.FullFlow(w, circuits.SmallSuite(), 1, true); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPaperVsBaseline regenerates the headline platform comparison.
func BenchmarkPaperVsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PaperVsBaseline(io.Discard, circuits.SmallSuite(), 1)
		if err != nil {
			b.Fatal(err)
		}
		sink = rows
	}
}

// TestRunFacade exercises the public Run entry point on both input kinds.
func TestRunFacade(t *testing.T) {
	res, err := Run(circuits.ParityTree(8).VHDL, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("VHDL run not verified")
	}
	blif := ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n"
	res2, err := Run(blif, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Verified {
		t.Fatal("BLIF run not verified")
	}
}

// BenchmarkTimingDrivenAblation compares wirelength-driven and timing-driven
// placement through the full flow.
func BenchmarkTimingDrivenAblation(b *testing.B) {
	src := circuits.RippleAdder(8).VHDL
	run := func(b *testing.B, td bool) {
		var critSum float64
		for i := 0; i < b.N; i++ {
			res, err := Run(src, Options{Seed: 1, SkipVerify: true, TimingDrivenPlace: td, ClockHz: 100e6})
			if err != nil {
				b.Fatal(err)
			}
			critSum += res.Metrics.CriticalPath
			sink = res
		}
		b.ReportMetric(critSum/float64(b.N)*1e9, "crit-ns")
	}
	b.Run("wirelength", func(b *testing.B) { run(b, false) })
	b.Run("timing", func(b *testing.B) { run(b, true) })
}
