package fpgaflow

// A*-vs-Dijkstra equivalence on the golden designs: the router's cost
// lookahead is an admissible lower bound, so directed search must change
// how many nodes are popped, never which routes win. Each golden example
// is placed once by the real flow at its minimum channel width, then
// routed twice — lookahead on and off — and the route trees must be
// byte-identical (which implies identical wirelength and routability).

import (
	"bytes"
	"encoding/json"
	"testing"

	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

func TestLookaheadEquivalenceGolden(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			res, _ := runQoR(t, src, 0)
			g1, err := rrgraph.Build(res.Problem.Arch)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := rrgraph.Build(res.Problem.Arch)
			if err != nil {
				t.Fatal(err)
			}
			astar, err := route.Route(res.Problem, res.Placed, g1, route.Options{})
			if err != nil {
				t.Fatal(err)
			}
			dijkstra, err := route.Route(res.Problem, res.Placed, g2, route.Options{NoLookahead: true})
			if err != nil {
				t.Fatal(err)
			}
			if astar.Success != dijkstra.Success {
				t.Fatalf("routability differs: astar %v, dijkstra %v", astar.Success, dijkstra.Success)
			}
			if aw, dw := astar.WirelengthUsed(), dijkstra.WirelengthUsed(); aw != dw {
				t.Errorf("wirelength differs: astar %d, dijkstra %d", aw, dw)
			}
			for ni := range astar.Routes {
				at, err := json.Marshal(astar.Routes[ni].Paths)
				if err != nil {
					t.Fatal(err)
				}
				dt, err := json.Marshal(dijkstra.Routes[ni].Paths)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(at, dt) {
					t.Errorf("net %d route trees differ:\n  astar:    %s\n  dijkstra: %s", ni, at, dt)
				}
			}
		})
	}
}
