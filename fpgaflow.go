// Package fpgaflow is the public facade of the integrated FPGA design
// framework: a reproduction of "An Integrated FPGA Design Framework: Custom
// Designed FPGA Platform and Application Mapping Toolset Development"
// (Kalenteridis et al., IPPS 2004).
//
// The framework has two halves, mirroring the paper:
//
//   - A model of the custom low-energy island-style FPGA platform:
//     cluster-based CLBs (N=5 BLEs, 4-input LUTs, 12 inputs), double-edge-
//     triggered flip-flops with clock gating, and a pass-transistor routing
//     fabric sized by the energy-delay-area exploration of §3.3.
//
//   - The complete CAD flow from VHDL to configuration bitstream: VHDL
//     Parser, DIVINER (synthesis), DRUID (EDIF normalization), E2FMT
//     (EDIF→BLIF), SIS (logic optimization + FlowMap LUT mapping), T-VPack
//     (packing), DUTYS (architecture generation), VPR (placement and
//     routing), PowerModel and DAGGER (bitstream generation), plus the
//     browser GUI.
//
// Run executes the whole flow; the cmd/ directory exposes each tool
// standalone, and internal/experiments regenerates every table and figure
// of the paper (see EXPERIMENTS.md).
package fpgaflow

import (
	"strings"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/core"
)

// Options re-exports the flow options.
type Options = core.Options

// Result re-exports the flow result.
type Result = core.Result

// Metrics re-exports the flow summary metrics.
type Metrics = core.Metrics

// Mapper selection.
const (
	MapFlowMap = core.MapFlowMap
	MapGreedy  = core.MapGreedy
)

// Profile re-exports the QoR objective profiles (Options.Profile).
type Profile = core.Profile

// QoR objective profiles: the fpgaflow -profile values.
const (
	ProfileBalanced  = core.ProfileBalanced
	ProfileMinDelay  = core.ProfileMinDelay
	ProfileMinEnergy = core.ProfileMinEnergy
	ProfileMinArea   = core.ProfileMinArea
)

// PaperArch returns the architecture selected by the paper (§3): N=5, K=4,
// I=12, DETFFs, gated clocks, disjoint switch boxes with 10x pass
// transistors on length-1 wires at minimum width and double spacing.
func PaperArch() *arch.Arch { return arch.Paper() }

// Run executes the complete flow on a design given as VHDL or BLIF text
// (auto-detected) and returns the per-stage results, metrics, and the
// configuration bitstream.
func Run(source string, opts Options) (*Result, error) {
	if looksLikeBLIF(source) {
		return core.RunBLIF(source, opts)
	}
	return core.RunVHDL(source, opts)
}

// looksLikeBLIF reports whether the input is a BLIF netlist: the first
// non-blank, non-comment line is a BLIF directive. (A prefix test on the
// raw text misclassifies BLIF files that open with '#' comments.)
func looksLikeBLIF(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.HasPrefix(line, ".model") || strings.HasPrefix(line, ".inputs")
	}
	return false
}
