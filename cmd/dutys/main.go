// Command dutys is the paper's DUTYS tool: it generates the architecture
// description file for the target FPGA from command-line features.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/obs"
)

func main() {
	n := flag.Int("n", 5, "cluster size")
	k := flag.Int("k", 4, "LUT inputs")
	i := flag.Int("i", 12, "cluster inputs")
	rows := flag.Int("rows", 8, "grid rows")
	cols := flag.Int("cols", 8, "grid cols")
	w := flag.Int("w", 16, "channel width")
	seg := flag.Int("seg", 1, "segment length")
	gated := flag.Bool("gated-clock", true, "gated clock at BLE and CLB level")
	detff := flag.Bool("detff", true, "double edge-triggered flip-flops")
	switchW := flag.Float64("switch-width", 10, "routing switch width (x minimum)")
	check := flag.String("check", "", "parse and validate an existing architecture file instead")
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "dutys")
		return
	}
	if *check != "" {
		b, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		a, err := arch.Parse(string(b))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("OK: %s, %dx%d grid, %d-wide channels, %d config-relevant pins/CLB\n",
			a.Name, a.Cols, a.Rows, a.Routing.ChannelWidth, a.PinsPerCLB())
		return
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.K, a.CLB.I = *n, *k, *i
	a.CLB.GatedClock, a.CLB.DoubleEdgeFF = *gated, *detff
	a.Rows, a.Cols = *rows, *cols
	a.Routing.ChannelWidth = *w
	a.Routing.SegmentLength = *seg
	a.Routing.SwitchWidthMult = *switchW
	if err := a.Validate(); err != nil {
		fatal(err)
	}
	fmt.Print(arch.Format(a))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
