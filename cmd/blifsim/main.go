// Command blifsim drives the functional simulator on a BLIF netlist: input
// vectors are read from stdin (one per line, inputs in .inputs order as 0/1
// characters), outputs are printed per cycle. Sequential designs clock once
// per vector.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/sim"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: blifsim design.blif < vectors.txt
Each input line holds one 0/1 character per primary input (declaration
order). Outputs are printed in .outputs order, one line per vector.
`)
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "blifsim")
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := netlist.ParseBLIF(string(data))
	if err != nil {
		fatal(err)
	}
	s, err := sim.New(nl)
	if err != nil {
		fatal(err)
	}
	inputs := sim.InputNames(nl)
	fmt.Printf("# inputs: %s\n# outputs: %s\n", strings.Join(inputs, " "), strings.Join(nl.Outputs, " "))
	sc := bufio.NewScanner(os.Stdin)
	cycle := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(line) != len(inputs) {
			fatal(fmt.Errorf("cycle %d: %d bits for %d inputs", cycle, len(line), len(inputs)))
		}
		vec := make(map[string]bool, len(inputs))
		for i, name := range inputs {
			switch line[i] {
			case '0':
				vec[name] = false
			case '1':
				vec[name] = true
			default:
				fatal(fmt.Errorf("cycle %d: bad bit %q", cycle, line[i]))
			}
		}
		out, err := s.Step(vec)
		if err != nil {
			fatal(err)
		}
		var sb strings.Builder
		for _, o := range nl.Outputs {
			if out[o] {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		fmt.Println(sb.String())
		cycle++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
