package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles fpgavet into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "fpgavet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building fpgavet: %v\n%s", err, out)
	}
	return tool
}

// writeModule lays out a throwaway module with the given files and returns
// its directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet runs `go vet -vettool=tool ./...` in dir with extra environment
// entries and returns combined output plus the error (nil on exit 0).
func runVet(t *testing.T, tool, dir string, env ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

const fixtureGoMod = "module fixturemod\n\ngo 1.22\n"

func TestVetToolFailsOnFinding(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"bad.go": `package fixturemod

func mayFail() error { return nil }

func run() { mayFail() }
`,
	})
	out, err := runVet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on a dropped error; output:\n%s", out)
	}
	if !strings.Contains(out, "silently dropped") || !strings.Contains(out, "[droppederror]") {
		t.Errorf("diagnostic text missing message or analyzer tag:\n%s", out)
	}
	if !strings.Contains(out, "bad.go:5:") {
		t.Errorf("diagnostic not positioned at bad.go:5:\n%s", out)
	}
}

func TestVetToolSuppressionPassesAndReports(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"bad.go": `package fixturemod

func mayFail() error { return nil }

func run() {
	//fpgavet:ignore droppederror best-effort notification, failure is benign
	mayFail()
}
`,
	})
	report := filepath.Join(t.TempDir(), "report.jsonl")
	out, err := runVet(t, tool, dir, "FPGAVET_JSONL="+report)
	if err != nil {
		t.Fatalf("go vet failed despite a reasoned suppression: %v\n%s", err, out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("JSONL report not written: %v", err)
	}
	var recs []jsonlRecord
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		var r jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	var found *jsonlRecord
	for i := range recs {
		if recs[i].Analyzer == "droppederror" {
			found = &recs[i]
		}
	}
	if found == nil {
		t.Fatalf("suppressed finding absent from burndown report: %+v", recs)
	}
	if !found.Suppressed || found.Reason != "best-effort notification, failure is benign" {
		t.Errorf("report record lost suppression state or reason: %+v", found)
	}
	if found.Package != "fixturemod" || found.Line != 7 {
		t.Errorf("report record mispositioned: %+v", found)
	}
}

func TestVetToolFailsOnReasonlessSuppression(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"bad.go": `package fixturemod

func mayFail() error { return nil }

func run() {
	//fpgavet:ignore droppederror
	mayFail()
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet accepted a reasonless suppression; output:\n%s", out)
	}
	if !strings.Contains(out, "missing a reason") || !strings.Contains(out, "[fpgavet]") {
		t.Errorf("directive-lint diagnostic missing:\n%s", out)
	}
}

func TestVetToolFailsOnStaleSuppression(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"ok.go": `package fixturemod

func fine() int {
	//fpgavet:ignore droppederror there was a call here once
	return 1
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet accepted a stale suppression; output:\n%s", out)
	}
	if !strings.Contains(out, "stale //fpgavet:ignore") {
		t.Errorf("staleness diagnostic missing:\n%s", out)
	}
}

func TestVetToolCleanModulePasses(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"ok.go": `package fixturemod

func fine() int { return 1 }
`,
	})
	if out, err := runVet(t, tool, dir); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
