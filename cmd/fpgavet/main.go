// Command fpgavet adapts the repo's custom analyzers (tools/analyzers) to
// the `go vet -vettool=` unitchecker protocol, so the standard build
// machinery drives them package-by-package with full type information:
//
//	go build -o bin/fpgavet ./cmd/fpgavet
//	go vet -vettool=bin/fpgavet ./...
//
// The protocol (normally provided by golang.org/x/tools unitchecker, hand
// implemented here because the repository is dependency-free): cmd/go
// invokes the tool with -V=full for a version fingerprint, with -flags for
// the supported flag list, and then once per package with a JSON config
// file argument describing the sources and the export data of every
// dependency.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
	"time"

	"fpgaflow/internal/obs"
	"fpgaflow/tools/analyzers"
)

// jsonlEnv names the environment variable that, when set to a file path,
// makes every package run append its diagnostics — suppressed ones included
// — as JSON lines to that file. `make vet-fix-list` uses it to publish the
// suppression-burndown report as a CI artifact. Single-line O_APPEND writes
// keep records intact across the per-package tool processes cmd/go runs in
// parallel.
const jsonlEnv = "FPGAVET_JSONL"

// vetConfig mirrors the fields of the cfg JSON that cmd/go writes for each
// vetted package (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			// No tool-specific flags; cmd/go still queries for them.
			fmt.Println("[]")
			return
		case os.Args[1] == "-version":
			obs.PrintVersion(os.Stdout, "fpgavet")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(checkPackage(os.Args[1]))
		}
	}
	fmt.Fprintf(os.Stderr, "usage: fpgavet is a go vet tool; run via go vet -vettool=fpgavet ./...\n\nanalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	os.Exit(2)
}

// printVersion emits the fingerprint line cmd/go uses to key the vet cache:
// the final field must be a buildID; hash the executable so the cache
// invalidates when the tool changes. A report run (FPGAVET_JSONL set) mixes
// the wall clock into the fingerprint so cmd/go never serves cached vet
// results — the report is a side effect the cache would otherwise skip.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) // best-effort fingerprint; a zero hash still works
			_ = f.Close()
		}
	}
	if report := os.Getenv(jsonlEnv); report != "" {
		fmt.Fprintf(h, "jsonl:%s:%d", report, time.Now().UnixNano())
	}
	fmt.Printf("fpgavet version devel comments-go-here buildID=%x\n", h.Sum(nil))
}

func checkPackage(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	// cmd/go caches the facts output and requires it to exist even though
	// these analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return fatal(err)
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts; nothing to report.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports from the compiler export data cmd/go already built:
	// source import path -> canonical path (ImportMap) -> export file
	// (PackageFile). The gc importer understands both archive and raw
	// export-data files.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, os.Getenv("GOARCH")),
	}
	if tcfg.Sizes == nil {
		tcfg.Sizes = types.SizesFor("gc", "amd64")
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fatal(fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err))
	}

	diags := analyzers.Run(analyzers.All(), fset, files, pkg, info)
	if report := os.Getenv(jsonlEnv); report != "" {
		if err := appendJSONL(report, cfg.ImportPath, diags); err != nil {
			return fatal(err)
		}
	}
	// Suppressed findings stay in the JSONL burndown report but are neither
	// printed nor counted against the exit code: an //fpgavet:ignore with a
	// reason is the sanctioned way to accept a finding.
	failing := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		failing++
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if failing > 0 {
		return 2
	}
	return 0
}

// jsonlRecord is one burndown-report line.
type jsonlRecord struct {
	Package    string `json:"package"`
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// appendJSONL appends every diagnostic of one package to the report file in
// a single write, so concurrent per-package tool processes interleave only
// at record boundaries.
func appendJSONL(path, pkg string, diags []analyzers.Diagnostic) error {
	if len(diags) == 0 {
		return nil
	}
	var buf []byte
	for _, d := range diags {
		rec := jsonlRecord{
			Package: pkg, Analyzer: d.Analyzer,
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Message: d.Message, Suppressed: d.Suppressed, Reason: d.SuppressReason,
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "fpgavet:", err)
	return 1
}
