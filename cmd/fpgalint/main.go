// Command fpgalint runs the flow's static-analysis rules (internal/check)
// over design artifacts from the command line: BLIF netlists, VHDL sources
// (pushed through the full flow with stage-boundary checks enabled) and
// encoded bitstreams. It is the standalone face of the same rule registry
// the flow applies between stages.
//
// Exit codes: 0 all checks clean (warnings allowed unless -strict),
// 1 error-severity diagnostics found, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/check"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/core"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	listRules := flag.Bool("rules", false, "list every registered rule and exit")
	suite := flag.Bool("suite", false, "run the built-in benchmark suite through the flow with all checks enabled")
	small := flag.Bool("small", false, "with -suite, use the small benchmark set")
	k := flag.Int("k", 0, "LUT input count for netlist arity rules (0 disables; the flow uses K=4)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	strict := flag.Bool("strict", false, "treat warnings as errors for the exit code")
	disable := flag.String("disable", "", "comma-separated rule IDs to suppress")
	seed := flag.Int64("seed", 1, "flow seed for -suite and VHDL inputs")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: fpgalint [flags] file.blif|file.vhd|file.bit ...
       fpgalint -rules
       fpgalint -suite [-small]

Runs the flow's stage-boundary checks over standalone artifacts.
See docs/CHECKS.md for the rule catalogue.

`)
		flag.PrintDefaults()
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "fpgalint")
		return 0
	}

	if *listRules {
		printRules()
		return 0
	}
	if !*suite && flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	tr, finish := cli.Start("fpgalint")
	defer func() {
		if err := finish(); err != nil {
			fmt.Fprintln(os.Stderr, "fpgalint: obs:", err)
		}
	}()

	disabled := splitList(*disable)
	var all []check.Diagnostic
	status := 0
	worse := func(s int) {
		if s > status {
			status = s
		}
	}

	if *suite {
		benches := circuits.Suite()
		if *small {
			benches = circuits.SmallSuite()
		}
		for _, b := range benches {
			_, err := core.RunVHDL(b.VHDL, core.Options{Seed: *seed, Obs: tr, DisableChecks: disabled})
			if err != nil {
				fmt.Fprintf(os.Stderr, "fpgalint: suite %s: FAIL: %v\n", b.Name, err)
				worse(1)
				continue
			}
			if !*jsonOut {
				fmt.Printf("%s: ok\n", b.Name)
			}
		}
	}

	for _, path := range flag.Args() {
		rep, err := checkFile(path, *k, *seed, disabled, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpgalint: %s: %v\n", path, err)
			worse(2)
			continue
		}
		if tr != nil {
			rep.Record(tr)
		}
		for _, d := range rep.Diags {
			if !*jsonOut {
				fmt.Printf("%s: %s\n", path, d)
			}
			all = append(all, d)
		}
		if rep.Count(check.Error) > 0 || (*strict && rep.Count(check.Warn) > 0) {
			worse(1)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []check.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "fpgalint:", err)
			worse(2)
		}
	}
	return status
}

// checkFile dispatches one artifact to the stage its extension belongs to.
func checkFile(path string, k int, seed int64, disabled []string, tr *obs.Trace) (*check.Report, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".blif":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		text := string(data)
		arts := &check.Artifacts{BLIF: text, K: k, Disable: disabled}
		// Parse failures other than multi-driven drivers are reported as
		// load errors; the text-level rules still run either way.
		if nl, err := netlist.ParseBLIF(text); err == nil {
			arts.Netlist = nl
		} else if check.RunStage(check.StageNetlist, arts).Count(check.Error) == 0 {
			return nil, err
		}
		return check.RunStage(check.StageNetlist, arts), nil
	case ".vhd", ".vhdl":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		// The full flow runs every stage-boundary check and fails fast on
		// error severity; surviving it is the lint result.
		_, err = core.RunVHDL(string(data), core.Options{Seed: seed, Obs: tr, DisableChecks: disabled})
		if err != nil {
			return nil, err
		}
		return &check.Report{}, nil
	case ".bit":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		bs, err := bitstream.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("decode: %w", err)
		}
		// Standalone bitstreams carry their own architecture header; the
		// decode rule audits the roundtrip against it.
		return check.RunStage(check.StageBitstream,
			&check.Artifacts{Encoded: data, Arch: bs.Arch, Disable: disabled}), nil
	default:
		return nil, fmt.Errorf("unsupported artifact type %q (want .blif, .vhd, .vhdl or .bit)", filepath.Ext(path))
	}
}

func printRules() {
	rules := check.Rules()
	w := 0
	for _, r := range rules {
		if len(r.ID) > w {
			w = len(r.ID)
		}
	}
	var stages []check.Stage
	byStage := map[check.Stage][]*check.Rule{}
	for _, r := range rules {
		if len(byStage[r.Stage]) == 0 {
			stages = append(stages, r.Stage)
		}
		byStage[r.Stage] = append(byStage[r.Stage], r)
	}
	sort.Slice(stages, func(i, j int) bool { return stageIndex(stages[i]) < stageIndex(stages[j]) })
	for _, s := range stages {
		fmt.Printf("%s:\n", s)
		for _, r := range byStage[s] {
			fmt.Printf("  %-*s  %-5s  %s\n", w, r.ID, r.Severity, r.Doc)
		}
	}
}

func stageIndex(s check.Stage) int {
	for i, st := range check.Stages() {
		if st == s {
			return i
		}
	}
	return len(check.Stages())
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
