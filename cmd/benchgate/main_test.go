package main

import (
	"strings"
	"testing"
)

func gateReports() (*Report, *Report) {
	base := &Report{Designs: []DesignReport{{
		Name: "d", LUTs: 10, CLBs: 3, ChannelWidth: 4, BitstreamBits: 1000,
		Wirelength: 50, RoutedNets: 20, RouteHeapPops: 10000,
		CriticalPathPS: 5000, EnergyFJ: 2000,
	}}}
	cur := &Report{Designs: []DesignReport{base.Designs[0]}}
	return base, cur
}

func TestCompareGatesDelayAndEnergy(t *testing.T) {
	bd := bands{tol: 0.05, pops: 0.20, delay: 0.05, energy: 0.05}
	base, cur := gateReports()
	if err := compare(base, cur, bd); err != nil {
		t.Fatalf("identical reports failed: %v", err)
	}
	// A 10% critical-path regression must fail the 5% delay band even when
	// every structural metric is unchanged.
	cur.Designs[0].CriticalPathPS = 5500
	err := compare(base, cur, bd)
	if err == nil || !strings.Contains(err.Error(), "critical_path_ps") {
		t.Fatalf("delay regression not gated: %v", err)
	}
	// Same for energy.
	base, cur = gateReports()
	cur.Designs[0].EnergyFJ = 2300
	err = compare(base, cur, bd)
	if err == nil || !strings.Contains(err.Error(), "energy_fj") {
		t.Fatalf("energy regression not gated: %v", err)
	}
	// A loose band admits the same drift.
	if err := compare(base, cur, bands{tol: 0.05, pops: 0.20, delay: 0.05, energy: 0.20}); err != nil {
		t.Fatalf("energy drift inside its band rejected: %v", err)
	}
}

func TestMarkdownHasDelayAndEnergyColumns(t *testing.T) {
	bd := bands{tol: 0.05, pops: 0.20, delay: 0.05, energy: 0.05}
	base, cur := gateReports()
	cur.Designs[0].CriticalPathPS = 6000
	md := markdown(base, cur, bd, "bench_baseline.json")
	if !strings.Contains(md, "| crit ps |") || !strings.Contains(md, "| energy fJ |") {
		t.Fatalf("markdown missing delay/energy columns:\n%s", md)
	}
	if !strings.Contains(md, "5000 → 6000 ⚠️") {
		t.Fatalf("markdown does not flag the delay drift:\n%s", md)
	}
	if !strings.Contains(md, "❌") {
		t.Fatalf("markdown row not marked failing:\n%s", md)
	}
}
