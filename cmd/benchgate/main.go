// Command benchgate is the CI quality gate on the flow's tier-1 metrics.
// It runs the small benchmark suite through the complete flow with the
// observability layer enabled, emits a machine-readable report (one obs
// summary per design), and compares the tier-1 QoR metrics — LUTs, CLBs,
// minimum channel width, bitstream bits, routed wirelength, routed-net
// count and PathFinder heap pops (routing-effort proxy) — against a
// committed baseline, failing (exit 1) on drift beyond the tolerance.
//
// Usage:
//
//	benchgate -emit BENCH_ci.json -baseline bench_baseline.json -tol 0.05
//	benchgate -update bench_baseline.json     # refresh the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/core"
	"fpgaflow/internal/obs"
)

// DesignReport is the per-design gate record. The tier-1 metrics are
// pulled from the run's obs counters (the same numbers fpgaflow -metrics
// reports), so the gate exercises the observability layer end to end.
type DesignReport struct {
	Name          string `json:"name"`
	LUTs          int64  `json:"luts"`
	CLBs          int64  `json:"clbs"`
	ChannelWidth  int64  `json:"channel_width"`
	BitstreamBits int64  `json:"bitstream_bits"`
	// Routing QoR and effort: wire segments used, signal nets routed, and
	// PathFinder heap pops (a deterministic proxy for routing runtime that
	// is stable in CI where wall time is not).
	Wirelength    int64 `json:"wirelength"`
	RoutedNets    int64 `json:"routed_nets"`
	RouteHeapPops int64 `json:"route_heap_pops"`
	// Timing/power QoR: post-route critical path (picoseconds) and energy
	// per clock cycle (femtojoules), gated by -delay-tol and -energy-tol.
	// Integer units keep the JSON byte-stable run to run.
	CriticalPathPS int64   `json:"critical_path_ps"`
	EnergyFJ       int64   `json:"energy_fj"`
	WallMS         float64 `json:"wall_ms"`
	// Metrics is the full obs summary for the run (informational; not
	// compared by the gate).
	Metrics *obs.Summary `json:"metrics,omitempty"`
}

// Report is the whole gate document.
type Report struct {
	GoVersion string         `json:"go_version"`
	Seed      int64          `json:"seed"`
	Designs   []DesignReport `json:"designs"`
}

func main() {
	emit := flag.String("emit", "", "write the current run's report to this JSON file")
	baseline := flag.String("baseline", "", "compare against this committed baseline report")
	update := flag.String("update", "", "run the suite and (over)write this baseline file")
	tol := flag.Float64("tol", 0.05, "allowed relative drift per tier-1 metric")
	popsTol := flag.Float64("pops-tol", 0, "allowed relative drift for route_heap_pops (0 = 4×tol)")
	delayTol := flag.Float64("delay-tol", 0, "allowed relative drift for critical_path_ps (0 = tol)")
	energyTol := flag.Float64("energy-tol", 0, "allowed relative drift for energy_fj (0 = tol)")
	md := flag.String("md", "", "append a markdown comparison table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	seed := flag.Int64("seed", 1, "flow seed (must match the baseline's)")
	full := flag.Bool("summaries", false, "embed full obs summaries in the emitted report")
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "benchgate")
		return
	}

	rep, err := run(*seed, *full)
	if err != nil {
		fatal(err)
	}
	if *update != "" {
		if err := writeJSON(*update, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d designs)\n", *update, len(rep.Designs))
		return
	}
	if *emit != "" {
		if err := writeJSON(*emit, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d designs)\n", *emit, len(rep.Designs))
	}
	if *baseline == "" {
		return
	}
	base, err := readReport(*baseline)
	if err != nil {
		fatal(err)
	}
	bd := bands{tol: *tol, pops: *popsTol, delay: *delayTol, energy: *energyTol}
	if bd.pops == 0 {
		bd.pops = 4 * *tol
	}
	if bd.delay == 0 {
		bd.delay = *tol
	}
	if bd.energy == 0 {
		bd.energy = *tol
	}
	cmpErr := compare(base, rep, bd)
	if *md != "" {
		if err := appendFile(*md, markdown(base, rep, bd, *baseline)); err != nil {
			fatal(err)
		}
	}
	if cmpErr != nil {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", cmpErr)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d designs within %.0f%% of %s\n",
		len(rep.Designs), *tol*100, *baseline)
}

// bands holds the per-metric tolerance bands: tol for structural QoR,
// pops for routing effort, delay/energy for the timing and power gates.
type bands struct {
	tol, pops, delay, energy float64
}

// run pushes the small suite through the flow, one obs trace per design.
func run(seed int64, embedSummaries bool) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), Seed: seed}
	for _, bench := range circuits.SmallSuite() {
		tr := obs.New(bench.Name)
		start := time.Now()
		_, err := core.RunVHDL(bench.VHDL, core.Options{
			Seed:            seed,
			SkipVerify:      true,
			MinChannelWidth: true,
			ClockHz:         100e6,
			Obs:             tr,
		})
		if err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", bench.Name, err)
		}
		counters := tr.Counters()
		gauges := tr.Gauges()
		d := DesignReport{
			Name:           bench.Name,
			LUTs:           counters["flow.luts"],
			CLBs:           counters["flow.clbs"],
			ChannelWidth:   counters["flow.channel_width"],
			BitstreamBits:  counters["flow.bitstream_bits"],
			Wirelength:     counters["route.wirelength"],
			RoutedNets:     counters["flow.nets"],
			RouteHeapPops:  counters["route.heap_pops"],
			CriticalPathPS: int64(math.Round(gauges["timing.critical_path_ns"] * 1e3)),
			EnergyFJ:       int64(math.Round(gauges["power.energy_pj"] * 1e3)),
			WallMS:         float64(time.Since(start).Microseconds()) / 1000,
		}
		if embedSummaries {
			d.Metrics = tr.Summary()
		}
		rep.Designs = append(rep.Designs, d)
	}
	return rep, nil
}

// compare checks every tier-1 metric of every design against the baseline.
// All drifts are reported, not just the first. Each metric family uses its
// band from bd: routing effort (heap pops) moves more than QoR under
// benign heuristic tweaks so it usually gets a looser tolerance, while
// delay and energy get their own bands so timing/power regressions gate
// independently of the structural metrics.
func compare(base, cur *Report, bd bands) error {
	baseBy := make(map[string]DesignReport, len(base.Designs))
	for _, d := range base.Designs {
		baseBy[d.Name] = d
	}
	var failures []string
	for _, d := range cur.Designs {
		b, ok := baseBy[d.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline (refresh it)", d.Name))
			continue
		}
		delete(baseBy, d.Name)
		check := func(metric string, baseV, curV int64, band float64) {
			if drift := relDrift(baseV, curV); drift > band {
				failures = append(failures, fmt.Sprintf("%s: %s drifted %.1f%% (baseline %d, current %d)",
					d.Name, metric, drift*100, baseV, curV))
			}
		}
		check("luts", b.LUTs, d.LUTs, bd.tol)
		check("clbs", b.CLBs, d.CLBs, bd.tol)
		check("channel_width", b.ChannelWidth, d.ChannelWidth, bd.tol)
		check("bitstream_bits", b.BitstreamBits, d.BitstreamBits, bd.tol)
		check("wirelength", b.Wirelength, d.Wirelength, bd.tol)
		check("routed_nets", b.RoutedNets, d.RoutedNets, bd.tol)
		check("route_heap_pops", b.RouteHeapPops, d.RouteHeapPops, bd.pops)
		check("critical_path_ps", b.CriticalPathPS, d.CriticalPathPS, bd.delay)
		check("energy_fj", b.EnergyFJ, d.EnergyFJ, bd.energy)
	}
	for name := range baseBy {
		failures = append(failures, fmt.Sprintf("%s: in baseline but not in current run", name))
	}
	if len(failures) > 0 {
		msg := failures[0]
		for _, f := range failures[1:] {
			msg += "; " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// markdown renders the baseline-vs-current comparison as a GitHub-flavored
// table, one row per design, cells showing "base → cur" where the metric
// moved. Written to $GITHUB_STEP_SUMMARY by CI so the drift is readable
// without downloading artifacts.
func markdown(base, cur *Report, bd bands, baselinePath string) string {
	baseBy := make(map[string]DesignReport, len(base.Designs))
	for _, d := range base.Designs {
		baseBy[d.Name] = d
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### benchgate: tier-1 QoR vs `%s` (tol %.0f%%, heap-pop tol %.0f%%, delay tol %.0f%%, energy tol %.0f%%)\n\n",
		baselinePath, bd.tol*100, bd.pops*100, bd.delay*100, bd.energy*100)
	sb.WriteString("| design | LUTs | CLBs | W | bits | wirelength | nets | heap pops | crit ps | energy fJ | wall ms | status |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, d := range cur.Designs {
		b, ok := baseBy[d.Name]
		if !ok {
			fmt.Fprintf(&sb, "| %s | – | – | – | – | – | – | – | – | – | %.1f | ❌ missing from baseline |\n",
				d.Name, d.WallMS)
			continue
		}
		delete(baseBy, d.Name)
		ok = true
		cell := func(baseV, curV int64, band float64) string {
			drift := relDrift(baseV, curV)
			if baseV == curV {
				return fmt.Sprintf("%d", curV)
			}
			s := fmt.Sprintf("%d → %d", baseV, curV)
			if drift > band {
				ok = false
				s += " ⚠️"
			}
			return s
		}
		row := fmt.Sprintf("| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %.1f |",
			d.Name,
			cell(b.LUTs, d.LUTs, bd.tol),
			cell(b.CLBs, d.CLBs, bd.tol),
			cell(b.ChannelWidth, d.ChannelWidth, bd.tol),
			cell(b.BitstreamBits, d.BitstreamBits, bd.tol),
			cell(b.Wirelength, d.Wirelength, bd.tol),
			cell(b.RoutedNets, d.RoutedNets, bd.tol),
			cell(b.RouteHeapPops, d.RouteHeapPops, bd.pops),
			cell(b.CriticalPathPS, d.CriticalPathPS, bd.delay),
			cell(b.EnergyFJ, d.EnergyFJ, bd.energy),
			d.WallMS)
		if ok {
			row += " ✅ |"
		} else {
			row += " ❌ |"
		}
		sb.WriteString(row + "\n")
	}
	for name := range baseBy {
		fmt.Fprintf(&sb, "| %s | – | – | – | – | – | – | – | – | – | – | ❌ in baseline but not run |\n", name)
	}
	sb.WriteString("\n")
	return sb.String()
}

// appendFile appends to path (creating it if needed) — $GITHUB_STEP_SUMMARY
// may already hold earlier steps' sections, so no truncation.
func appendFile(path, s string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(s); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func relDrift(base, cur int64) float64 {
	if base == cur {
		return 0
	}
	if base == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(cur)-float64(base)) / math.Abs(float64(base))
}

func writeJSON(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		_ = f.Close() // the encode error is the one worth reporting
		return err
	}
	return f.Close()
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchgate: bad report %s: %w", path, err)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
