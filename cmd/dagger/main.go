// Command dagger is the paper's bitstream generator: it runs the back end
// (pack, place, route) on a mapped BLIF netlist and writes the binary
// configuration bitstream. With -extract it reverses a bitstream back to
// BLIF for inspection/verification.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/core"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
)

func main() {
	out := flag.String("o", "design.bit", "output bitstream file")
	extract := flag.String("extract", "", "decode a bitstream file back to BLIF on stdout")
	diffA := flag.String("diff", "", "with -against: report the partial-reconfiguration delta")
	diffB := flag.String("against", "", "second bitstream for -diff")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dagger [-o out.bit] [file.blif]\n       dagger -extract design.bit\n       dagger -diff a.bit -against b.bit\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "dagger")
		return
	}
	if *diffA != "" || *diffB != "" {
		if *diffA == "" || *diffB == "" {
			fatal(fmt.Errorf("-diff and -against must be used together"))
		}
		a, err := loadBitstream(*diffA)
		if err != nil {
			fatal(err)
		}
		b, err := loadBitstream(*diffB)
		if err != nil {
			fatal(err)
		}
		d, err := bitstream.Diff(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("partial reconfiguration %s -> %s: %d changed items (%d tiles, %d pads, %d switches, %d opin, %d ipin)\n",
			a.ModelName, b.ModelName, d.Size(), len(d.CLBs), len(d.Pads),
			len(d.SwitchSet), len(d.OPinSet), len(d.IPinSet))
		return
	}
	if *extract != "" {
		data, err := os.ReadFile(*extract)
		if err != nil {
			fatal(err)
		}
		bs, err := bitstream.Decode(data)
		if err != nil {
			fatal(err)
		}
		nl, err := bitstream.Extract(bs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(netlist.FormatBLIF(nl))
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := core.RunBLIF(src, core.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, res.Encoded, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("dagger: wrote %d bytes to %s (verified: %v)\n", len(res.Encoded), *out, res.Verified)
}

func loadBitstream(path string) (*bitstream.Bitstream, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bitstream.Decode(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
