// Command fpgaflow runs the complete integrated flow: VHDL (or BLIF) in,
// verified configuration bitstream out, with a per-stage report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/core"
	"fpgaflow/internal/obs"
)

func main() {
	out := flag.String("o", "", "write the bitstream to this file")
	top := flag.String("top", "", "top entity (VHDL input)")
	seed := flag.Int64("seed", 1, "seed")
	minW := flag.Bool("min-w", false, "search minimum channel width")
	greedy := flag.Bool("greedy", false, "greedy LUT mapper instead of FlowMap")
	noVerify := flag.Bool("no-verify", false, "skip the closing bitstream equivalence check")
	timing := flag.Bool("timing", false, "timing-driven placement and routing")
	seeds := flag.Int("place-seeds", 1, "parallel placement seeds (keep the best)")
	clock := flag.Float64("clock", 0, "power-estimation clock in MHz (0 = fmax)")
	archFile := flag.String("arch", "", "DUTYS architecture file")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fpgaflow [options] design.vhd|design.blif\nRuns VHDL->bitstream with all paper tools; prints the stage report.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	tr, finishObs := obsFlags.Start("fpgaflow")
	opts := core.Options{
		Top: *top, Seed: *seed, MinChannelWidth: *minW,
		SkipVerify: *noVerify, ClockHz: *clock * 1e6,
		TimingDrivenPlace: *timing, TimingDrivenRoute: *timing,
		PlaceSeeds: *seeds, Obs: tr,
	}
	if *greedy {
		opts.Mapper = core.MapGreedy
	}
	if *archFile != "" {
		b, err := os.ReadFile(*archFile)
		if err != nil {
			fatal(err)
		}
		if opts.Arch, err = arch.Parse(string(b)); err != nil {
			fatal(err)
		}
	}
	var res *core.Result
	if strings.HasPrefix(strings.TrimSpace(src), ".model") {
		res, err = core.RunBLIF(src, opts)
	} else {
		res, err = core.RunVHDL(src, opts)
	}
	if res != nil {
		fmt.Print(res.Summary())
	}
	ferr := finishObs()
	if err != nil {
		fatal(err)
	}
	if ferr != nil {
		fatal(fmt.Errorf("observability: %w", ferr))
	}
	if *out != "" {
		if err := os.WriteFile(*out, res.Encoded, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(res.Encoded))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
