// Command fpgaflow runs the complete integrated flow: VHDL (or BLIF) in,
// verified configuration bitstream out, with a per-stage report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/core"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/obs"
)

func main() {
	out := flag.String("o", "", "write the bitstream to this file")
	top := flag.String("top", "", "top entity (VHDL input)")
	seed := flag.Int64("seed", 1, "seed")
	minW := flag.Bool("min-w", false, "search minimum channel width")
	greedy := flag.Bool("greedy", false, "greedy LUT mapper instead of FlowMap")
	noVerify := flag.Bool("no-verify", false, "skip the closing bitstream equivalence check")
	timing := flag.Bool("timing", false, "timing-driven placement and routing")
	profile := flag.String("profile", "", "QoR objective: balanced (default), min-delay, min-energy, min-area")
	seeds := flag.Int("place-seeds", 1, "parallel placement seeds (keep the best)")
	clock := flag.Float64("clock", 0, "power-estimation clock in MHz (0 = fmax)")
	archFile := flag.String("arch", "", "DUTYS architecture file")
	defects := flag.String("defects", "", "defect map JSON (see cmd/faultgen); run defect-aware")
	retries := flag.Int("retries", 1, "max flow attempts (re-seed / escalate channel width on failure)")
	jobs := flag.Int("j", 0, "placement and routing workers (0 = GOMAXPROCS, 1 = serial); result is identical for every value")
	flag.IntVar(jobs, "parallel", 0, "alias for -j")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage wall-time budget (0 = unbounded)")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fpgaflow [options] design.vhd|design.blif\nRuns VHDL->bitstream with all paper tools; prints the stage report.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "fpgaflow")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prof, err := core.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	tr, finishObs := obsFlags.Start("fpgaflow")
	opts := core.Options{
		Top: *top, Seed: *seed, MinChannelWidth: *minW,
		SkipVerify: *noVerify, ClockHz: *clock * 1e6,
		Profile:           prof,
		TimingDrivenPlace: *timing, TimingDrivenRoute: *timing,
		PlaceSeeds: *seeds, PlaceWorkers: *jobs, RouteWorkers: *jobs, Obs: tr,
		Events: obsFlags.Bus,
	}
	if *greedy {
		opts.Mapper = core.MapGreedy
	}
	if *archFile != "" {
		b, err := os.ReadFile(*archFile)
		if err != nil {
			fatal(err)
		}
		if opts.Arch, err = arch.Parse(string(b)); err != nil {
			fatal(err)
		}
	}
	if *defects != "" {
		dm, err := fault.Load(*defects)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, dm.Summary())
		opts.Defects = dm
	}
	opts.StageTimeout = *stageTimeout
	if *retries > 1 {
		opts.Retry = core.DefaultRetryPolicy()
		opts.Retry.MaxAttempts = *retries
	}
	var res *core.Result
	if looksLikeBLIF(src) {
		res, err = core.RunBLIF(src, opts)
	} else {
		res, err = core.RunVHDL(src, opts)
	}
	if res != nil {
		fmt.Print(res.Summary())
	}
	ferr := finishObs()
	if err != nil {
		fatal(err)
	}
	if ferr != nil {
		fatal(fmt.Errorf("observability: %w", ferr))
	}
	if *out != "" {
		if err := os.WriteFile(*out, res.Encoded, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(res.Encoded))
	}
}

// looksLikeBLIF reports whether the input is a BLIF netlist: the first
// non-blank, non-comment line is a BLIF directive. (A prefix test on the
// raw text misclassifies BLIF files that open with '#' comments.)
func looksLikeBLIF(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.HasPrefix(line, ".model") || strings.HasPrefix(line, ".inputs")
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
