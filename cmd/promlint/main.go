// Command promlint validates a Prometheus text-exposition document against
// the subset of the format internal/obs emits, so CI can gate the
// /metrics?format=prom endpoint without pulling in the real Prometheus
// toolchain:
//
//	curl -s localhost:8080/metrics?format=prom | promlint
//	promlint metrics.prom
//
// Checks (see obs.ValidatePrometheus): every sample is preceded by a
// # TYPE line for its family, metric names and label values are legal and
// properly escaped, histogram _bucket series are cumulative and monotone in
// le, every histogram ends with le="+Inf" equal to its _count, and sample
// values parse as floats. Exit status 0 means the document passed; 1 means
// it failed (the reason goes to stderr); 2 is a usage or I/O error.
package main

import (
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/obs"
)

func main() {
	var r io.Reader
	switch len(os.Args) {
	case 1:
		r = os.Stdin
	case 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [file]  (reads stdin when no file is given)")
		os.Exit(2)
	}
	if err := obs.ValidatePrometheus(r); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
