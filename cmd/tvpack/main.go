// Command tvpack is the T-VPack stage: it packs a K-LUT BLIF netlist into
// CLB clusters and reports the packing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/pack"
)

func main() {
	n := flag.Int("n", 5, "cluster size (BLEs per CLB)")
	k := flag.Int("k", 4, "LUT inputs")
	i := flag.Int("i", 0, "cluster inputs (0 = (K/2)(N+1))")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tvpack [-n N] [-k K] [-i I] [file.blif]\nPacks LUTs+FFs into clusters; prints the clustering.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "tvpack")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := netlist.ParseBLIF(src)
	if err != nil {
		fatal(err)
	}
	inputs := *i
	if inputs == 0 {
		inputs = pack.InputsForUtilization(*k, *n)
	}
	pk, err := pack.Pack(nl, pack.Params{N: *n, K: *k, I: inputs})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# tvpack: %d BLEs in %d clusters (N=%d K=%d I=%d), %.1f%% utilization\n",
		len(pk.BLEs), len(pk.Clusters), *n, *k, inputs, 100*pk.Utilization())
	for _, c := range pk.Clusters {
		outs := strings.Join(c.Outputs(), " ")
		fmt.Printf("cluster %d: bles [%s] inputs [%s] clock %q\n",
			c.ID, outs, strings.Join(c.Inputs, " "), c.Clock)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
