// Command equiv checks functional equivalence of two netlists (BLIF files),
// the verification companion used throughout the flow: exhaustive over the
// inputs for small combinational designs, random-vector otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/sim"
)

func main() {
	vectors := flag.Int("vectors", 1000, "random vectors/cycles for large or sequential designs")
	exhaustive := flag.Int("exhaustive", 14, "exhaustive check up to this many inputs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: equiv a.blif b.blif
Exit codes: 0 equivalent, 1 not equivalent or load failure,
3 port lists differ (the designs are not even comparable).
`)
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "equiv")
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	// Mismatched port lists get their own exit code: equivalence over
	// different interfaces is a category error, not a counterexample, and
	// scripts (CI, bisection) want to tell the two apart.
	if msg := portMismatch(a, b); msg != "" {
		fmt.Fprintln(os.Stderr, "PORT MISMATCH:", msg)
		os.Exit(3)
	}
	if err := sim.CheckEquivalent(a, b, *exhaustive, *vectors, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "NOT EQUIVALENT:", err)
		os.Exit(1)
	}
	fmt.Println("EQUIVALENT")
}

// portMismatch compares the primary input and output name sets of the two
// designs, returning a description of the first difference ("" when they
// match). Order is ignored: the flow freely reorders declarations.
func portMismatch(a, b *netlist.Netlist) string {
	ins := func(nl *netlist.Netlist) []string {
		names := make([]string, len(nl.Inputs))
		for i, n := range nl.Inputs {
			names[i] = n.Name
		}
		return names
	}
	if msg := setDiff("input", ins(a), ins(b)); msg != "" {
		return msg
	}
	return setDiff("output", a.Outputs, b.Outputs)
}

func setDiff(kind string, a, b []string) string {
	sort.Strings(a)
	sort.Strings(b)
	in := func(xs []string, s string) bool {
		i := sort.SearchStrings(xs, s)
		return i < len(xs) && xs[i] == s
	}
	for _, s := range a {
		if !in(b, s) {
			return fmt.Sprintf("%s %q only in the first design", kind, s)
		}
	}
	for _, s := range b {
		if !in(a, s) {
			return fmt.Sprintf("%s %q only in the second design", kind, s)
		}
	}
	return ""
}

func load(path string) (*netlist.Netlist, error) {
	bts, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return netlist.ParseBLIF(string(bts))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
