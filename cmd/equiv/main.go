// Command equiv checks functional equivalence of two netlists (BLIF files),
// the verification companion used throughout the flow: exhaustive over the
// inputs for small combinational designs, random-vector otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
)

func main() {
	vectors := flag.Int("vectors", 1000, "random vectors/cycles for large or sequential designs")
	exhaustive := flag.Int("exhaustive", 14, "exhaustive check up to this many inputs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: equiv a.blif b.blif\nExits 0 when the designs are functionally equivalent.\n")
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if err := sim.CheckEquivalent(a, b, *exhaustive, *vectors, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "NOT EQUIVALENT:", err)
		os.Exit(1)
	}
	fmt.Println("EQUIVALENT")
}

func load(path string) (*netlist.Netlist, error) {
	bts, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return netlist.ParseBLIF(string(bts))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
