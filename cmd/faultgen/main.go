// Command faultgen produces deterministic fault-injection artifacts for
// the flow: defect maps over the FPGA fabric (dead wires, dead switch
// points, defective sites, stuck LUT bits) and corrupted copies of
// on-disk artifacts (bit flips, truncation, garbled text). Everything is
// a pure function of its seed, so any fabric or corruption that exposes a
// bug is reproducible from the command line that made it.
//
//	faultgen -seed 42 -dead-switch 0.02 -o defects.json
//	faultgen -arch platform.arch -seed 7 -dead-wire 0.01 -bad-clb 0.05 -o defects.json
//	faultgen -corrupt design.bit -flips 32 -seed 3 -o broken.bit
//	faultgen -corrupt design.blif -garble 20 -seed 3 -o broken.blif
//	faultgen -corrupt design.bit -truncate 0.5 -o partial.bit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/obs"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "seed; the artifact is deterministic in it")
	archFile := flag.String("arch", "", "DUTYS architecture file (default: paper platform)")

	deadWire := flag.Float64("dead-wire", 0, "fraction of channel wires that are dead")
	deadSwitch := flag.Float64("dead-switch", 0, "fraction of switch points that are dead")
	badCLB := flag.Float64("bad-clb", 0, "fraction of logic sites that are defective")
	badIO := flag.Float64("bad-io", 0, "fraction of pad sites that are defective")
	stuckBit := flag.Float64("stuck-bit", 0, "fraction of LUT configuration bits stuck at a random value")

	corrupt := flag.String("corrupt", "", "corrupt this artifact instead of generating a defect map")
	flips := flag.Int("flips", 0, "with -corrupt: number of random bit flips")
	garble := flag.Int("garble", 0, "with -corrupt: number of random text edits")
	truncate := flag.Float64("truncate", -1, "with -corrupt: keep this leading fraction of the file")

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: faultgen [options]\nGenerates a defect map (JSON) for the flow, or corrupts an artifact with -corrupt.\n")
		flag.PrintDefaults()
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "faultgen")
		return
	}

	if *corrupt != "" {
		if err := runCorrupt(*corrupt, *out, *flips, *garble, *truncate, *seed); err != nil {
			fatal(err)
		}
		return
	}

	a := arch.Paper()
	if *archFile != "" {
		b, err := os.ReadFile(*archFile)
		if err != nil {
			fatal(err)
		}
		if a, err = arch.Parse(string(b)); err != nil {
			fatal(err)
		}
	}
	rates := fault.Rates{
		DeadWire: *deadWire, DeadSwitch: *deadSwitch,
		BadCLB: *badCLB, BadIO: *badIO, StuckBit: *stuckBit,
	}
	dm, err := fault.Generate(a, *seed, rates)
	if err != nil {
		fatal(err)
	}
	data, err := dm.Marshal()
	if err != nil {
		fatal(err)
	}
	if err := writeOut(*out, append(data, '\n')); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, dm.Summary())
}

func runCorrupt(in, out string, flips, garble int, truncate float64, seed int64) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	applied := []string{}
	if truncate >= 0 {
		data = fault.Truncate(data, truncate)
		applied = append(applied, fmt.Sprintf("truncated to %d bytes", len(data)))
	}
	if flips > 0 {
		data = fault.FlipBits(data, flips, seed)
		applied = append(applied, fmt.Sprintf("%d bit flips", flips))
	}
	if garble > 0 {
		data = []byte(fault.GarbleText(string(data), garble, seed))
		applied = append(applied, fmt.Sprintf("%d text edits", garble))
	}
	if len(applied) == 0 {
		return fmt.Errorf("faultgen: -corrupt needs at least one of -flips, -garble, -truncate")
	}
	if err := writeOut(out, data); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", in, strings.Join(applied, ", "))
	return nil
}

func writeOut(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
