// Command diviner is the paper's DIVINER synthesizer: VHDL in, EDIF netlist
// out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/edif"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/vhdl"
)

func main() {
	top := flag.String("top", "", "top entity (default: auto)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: diviner [-top entity] [file.vhd]\nSynthesizes VHDL to an EDIF netlist on stdout.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "diviner")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	d, err := vhdl.Parse(src)
	if err != nil {
		fatal(err)
	}
	nl, err := vhdl.Elaborate(d, *top)
	if err != nil {
		fatal(err)
	}
	text, err := edif.Write(nl)
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
