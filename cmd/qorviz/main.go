// Command qorviz renders the convergence-telemetry artifacts that
// `fpgaflow -events dir/` produces into standalone SVG documents, viewable
// in any browser with no server running:
//
//	qorviz -o fabric.svg dir/heatmap.json        fabric heatmap
//	qorviz -curves -o conv.svg dir/events.jsonl  convergence curves
//
// The heatmap view draws the CLB grid shaded by placement utilization with
// routing-channel segments overlaid, shaded by congestion (usage/capacity);
// overused segments are red. The curves view plots the annealing cost per
// temperature step and the router's overused-node count per PathFinder
// iteration from the raw event stream.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
)

func main() {
	out := flag.String("o", "", "output SVG file (default: stdout)")
	curves := flag.Bool("curves", false, "render convergence curves from an events.jsonl stream instead of a fabric heatmap")
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: qorviz [-o out.svg] heatmap.json
       qorviz -curves [-o out.svg] events.jsonl

Renders fpgaflow -events telemetry (fabric heatmaps, convergence curves)
as standalone SVG.
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "qorviz")
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var svg string
	var err error
	if *curves {
		svg, err = renderCurvesFile(flag.Arg(0))
	} else {
		svg, err = renderHeatmapFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qorviz:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(svg)
		return
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "qorviz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
}

func renderHeatmapFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	h, err := events.ParseHeatmap(data)
	if err != nil {
		return "", err
	}
	return RenderHeatmapSVG(h), nil
}

// Layout constants for the fabric view: each grid site is cell×cell pixels
// with gap-pixel routing channels between sites (where the channel segments
// draw), plus a margin for axis labels.
const (
	cell   = 26
	gap    = 8
	margin = 34
)

// RenderHeatmapSVG draws the fabric: one square per site shaded by
// utilization, channel segments in the gaps shaded by congestion.
func RenderHeatmapSVG(h *events.Heatmap) string {
	pitch := cell + gap
	w := margin*2 + h.Cols*pitch + gap
	ht := margin*2 + h.Rows*pitch + gap
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="monospace" font-size="9">`+"\n", w, ht, w, ht)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, ht)
	title := fmt.Sprintf("fabric %dx%d W=%d", h.Cols, h.Rows, h.ChannelWidth)
	if h.PlaceCost > 0 {
		title += fmt.Sprintf(" place-cost %.2f", h.PlaceCost)
	}
	if h.RouteIterations > 0 {
		title += fmt.Sprintf(" routed-in %d iters", h.RouteIterations)
		if !h.RouteSuccess {
			title += fmt.Sprintf(" UNROUTED (%d overused)", h.Overused)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", margin, margin-14, xmlEscape(title))

	// site origin: gap-wide channel precedes column/row 0.
	sx := func(x int) int { return margin + gap + x*pitch }
	sy := func(y int) int { return margin + gap + y*pitch }

	for _, c := range h.CLBs {
		fill := utilColor(c.Used, c.Capacity)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#444" stroke-width="0.5"><title>CLB (%d,%d): %d/%d BLEs</title></rect>`+"\n",
			sx(c.X), sy(c.Y), cell, cell, fill, c.X, c.Y, c.Used, c.Capacity)
	}
	for _, c := range h.Pads {
		fill := utilColor(c.Used, c.Capacity)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="5" fill="%s" stroke="#888" stroke-width="0.5"><title>pad site (%d,%d): %d/%d</title></rect>`+"\n",
			sx(c.X), sy(c.Y), cell, cell, fill, c.X, c.Y, c.Used, c.Capacity)
	}
	for _, s := range h.Channels {
		fill := congestionColor(s.Usage, s.Capacity)
		var x, y, sw, sh int
		if s.Vertical {
			// ChanY at (x,y): the vertical channel right of column x,
			// spanning row y.
			x, y = sx(s.X)+cell+1, sy(s.Y)
			sw, sh = gap-2, cell
		} else {
			// ChanX at (x,y): the horizontal channel above row y.
			x, y = sx(s.X), sy(s.Y)-gap+1
			sw, sh = cell, gap-2
		}
		dir := "chanx"
		if s.Vertical {
			dir = "chany"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s (%d,%d) track %d: %d/%d</title></rect>`+"\n",
			x, y, sw, sh, fill, dir, s.X, s.Y, s.Track, s.Usage, s.Capacity)
	}
	for x := 0; x < h.Cols; x++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#666">%d</text>`+"\n", sx(x)+cell/2, ht-margin+12, x)
	}
	for y := 0; y < h.Rows; y++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#666">%d</text>`+"\n", margin-4, sy(y)+cell/2+3, y)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// utilColor shades a site white→blue by used/capacity; empty sites are a
// light gray so the occupied fabric stands out.
func utilColor(used, capacity int) string {
	if used <= 0 {
		return "#f2f2f2"
	}
	f := 1.0
	if capacity > 0 {
		f = math.Min(1, float64(used)/float64(capacity))
	}
	// white (255) → medium blue (70,110,210)
	r := int(255 - f*(255-70))
	g := int(255 - f*(255-110))
	bl := int(255 - f*(255-210))
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

// congestionColor shades a channel segment yellow→orange by usage fraction
// and red once overused (usage > capacity).
func congestionColor(usage, capacity int) string {
	if capacity > 0 && usage > capacity {
		return "#d62728"
	}
	f := 1.0
	if capacity > 0 {
		f = math.Min(1, float64(usage)/float64(capacity))
	}
	// pale yellow (255,243,179) → strong orange (240,140,0)
	r := int(255 - f*(255-240))
	g := int(243 - f*(243-140))
	bl := int(179 - f*179)
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// renderCurvesFile reads an events.jsonl stream and plots the place/route
// convergence trajectories.
func renderCurvesFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var place []events.PlaceStep
	var route []events.RouteIter
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, err := events.Decode([]byte(line))
		if err != nil {
			return "", fmt.Errorf("%s: %w", path, err)
		}
		switch ev.Kind {
		case events.KindPlaceStep:
			place = append(place, *ev.PlaceStep)
		case events.KindRouteIter:
			route = append(route, *ev.RouteIter)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if len(place) == 0 && len(route) == 0 {
		return "", fmt.Errorf("%s: no place_step or route_iter events", path)
	}
	return RenderCurvesSVG(place, route), nil
}

const (
	plotW   = 560
	plotH   = 180
	plotPad = 46
)

// RenderCurvesSVG stacks up to two panels: annealing cost vs temperature
// step, and router overused nodes vs PathFinder iteration.
func RenderCurvesSVG(place []events.PlaceStep, route []events.RouteIter) string {
	panels := 0
	if len(place) > 0 {
		panels++
	}
	if len(route) > 0 {
		panels++
	}
	w := plotW + 2*plotPad
	h := panels*(plotH+2*plotPad) + 4
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="monospace" font-size="10">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
	top := 0
	if len(place) > 0 {
		ys := make([]float64, len(place))
		for i, p := range place {
			ys[i] = p.Cost
		}
		drawPanel(&b, top, fmt.Sprintf("annealing cost (%d temperature steps)", len(place)), "#1f77b4", ys)
		top += plotH + 2*plotPad
	}
	if len(route) > 0 {
		ys := make([]float64, len(route))
		for i, r := range route {
			ys[i] = float64(r.Overused)
		}
		drawPanel(&b, top, fmt.Sprintf("router overused nodes (%d iterations)", len(route)), "#d62728", ys)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// drawPanel renders one titled polyline panel with min/max y labels.
func drawPanel(b *strings.Builder, top int, title, color string, ys []float64) {
	x0, y0 := plotPad, top+plotPad
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", x0, y0-10, xmlEscape(title))
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#bbb"/>`+"\n", x0, y0, plotW, plotH)
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="end" fill="#666">%.4g</text>`+"\n", x0-4, y0+8, hi)
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="end" fill="#666">%.4g</text>`+"\n", x0-4, y0+plotH, lo)
	var pts strings.Builder
	for i, v := range ys {
		px := float64(x0)
		if len(ys) > 1 {
			px += float64(i) / float64(len(ys)-1) * plotW
		}
		py := float64(y0) + (1-(v-lo)/span)*plotH
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", px, py)
	}
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", pts.String(), color)
}
