// Command vpr is the placement-and-routing stage: it packs, places and
// routes a K-LUT BLIF netlist onto the architecture and reports the result.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/timing"
)

func main() {
	archFile := flag.String("arch", "", "DUTYS architecture file (default: paper architecture)")
	seed := flag.Int64("seed", 1, "placement seed")
	effort := flag.Float64("effort", 1, "annealing effort (VPR inner_num)")
	minW := flag.Bool("min-w", false, "binary search minimum channel width")
	jobs := flag.Int("j", 0, "placement and routing workers (0 = GOMAXPROCS, 1 = serial); result is identical for every value")
	flag.IntVar(jobs, "parallel", 0, "alias for -j")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vpr [-arch file] [-seed S] [-min-w] [file.blif]\nPlaces and routes a mapped netlist.\n")
	}
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "vpr")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	tr, finishObs := obsFlags.Start("vpr")
	a := arch.Paper()
	if *archFile != "" {
		b, err := os.ReadFile(*archFile)
		if err != nil {
			fatal(err)
		}
		if a, err = arch.Parse(string(b)); err != nil {
			fatal(err)
		}
	}
	nl, err := netlist.ParseBLIF(src)
	if err != nil {
		fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		fatal(err)
	}
	pk.Record(tr)
	p, err := place.NewProblem(a, pk)
	if err != nil {
		fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: *seed, InnerNum: *effort, Obs: tr, Events: obsFlags.Bus, Workers: *jobs})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placed %d blocks on %dx%d grid, bb cost %.2f\n", len(p.Blocks), a.Cols, a.Rows, pl.Cost)
	var r *route.Result
	ropts := route.Options{Obs: tr, Workers: *jobs, Events: obsFlags.Bus}
	if *minW {
		ropts.Cache = rrgraph.NewCache(0)
		w, rr, err := route.MinChannelWidth(p, pl, 1, a.Routing.ChannelWidth, ropts)
		if err != nil {
			fatal(err)
		}
		r = rr
		fmt.Printf("minimum channel width: %d\n", w)
	} else {
		g, err := rrgraph.Build(a)
		if err != nil {
			fatal(err)
		}
		if r, err = route.Route(p, pl, g, ropts); err != nil {
			fatal(err)
		}
		if !r.Success {
			fatal(fmt.Errorf("unroutable at W=%d (%d nodes overused)", a.Routing.ChannelWidth, r.Overused))
		}
	}
	an, err := timing.Analyze(pk, p, pl, r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("routed in %d iterations, %d wire segments used\n", r.Iterations, r.WirelengthUsed())
	fmt.Printf("critical path %.3f ns (%.1f MHz clock, %.1f Mb/s DETFF data rate) through %s\n",
		an.CriticalPath*1e9, an.MaxClockHz/1e6, an.MaxDataRateHz/1e6, an.CriticalSignal)
	if len(an.CriticalNodes) > 0 {
		fmt.Print("critical path trace:")
		for _, n := range an.CriticalNodes {
			fmt.Printf(" %s", n)
		}
		fmt.Println()
	}
	tr.SetGauge("timing.critical_path_ns", an.CriticalPath*1e9)
	if err := finishObs(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
