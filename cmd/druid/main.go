// Command druid is the paper's DRUID tool: it verifies and normalizes an
// EDIF netlist so the downstream tools can consume it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/edif"
	"fpgaflow/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: druid [file.edf]\nNormalizes EDIF on stdout.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "druid")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	out, err := edif.Druid(src)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
