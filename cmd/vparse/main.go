// Command vparse is the paper's "VHDL Parser" tool: it syntax- and
// semantics-checks a VHDL source file against the supported synthesizable
// subset and reports the first error, or "OK".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/obs"
	"fpgaflow/internal/vhdl"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vparse [file.vhd]\nChecks VHDL syntax and semantics (reads stdin without a file).\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "vparse")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := vhdl.CheckSource(src); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
