// Command powermodel estimates the power of a mapped BLIF design on the
// paper architecture (the PowerModel tool).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/core"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
)

func main() {
	clock := flag.Float64("clock", 100, "clock frequency in MHz")
	seed := flag.Int64("seed", 1, "placement/activity seed")
	cycles := flag.Int("cycles", 500, "activity simulation cycles")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: powermodel [-clock MHz] [file.blif]\nEstimates dynamic, short-circuit and leakage power.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "powermodel")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if _, err := netlist.ParseBLIF(src); err != nil {
		fatal(err)
	}
	res, err := core.RunBLIF(src, core.Options{
		Seed: *seed, ClockHz: *clock * 1e6, ActivityCycles: *cycles, SkipVerify: true,
	})
	if err != nil {
		fatal(err)
	}
	p := res.Power
	fmt.Printf("power estimate at %.0f MHz:\n", *clock)
	fmt.Printf("  dynamic routing : %9.4f mW\n", p.DynamicRouting*1e3)
	fmt.Printf("  dynamic logic   : %9.4f mW\n", p.DynamicLogic*1e3)
	fmt.Printf("  dynamic clock   : %9.4f mW\n", p.DynamicClock*1e3)
	fmt.Printf("  short-circuit   : %9.4f mW\n", p.ShortCircuit*1e3)
	fmt.Printf("  leakage         : %9.4f mW\n", p.Leakage*1e3)
	fmt.Printf("  total           : %9.4f mW\n", p.Total*1e3)
	if p.GatedClockSaving > 0 {
		fmt.Printf("  (clock gating saves %.4f mW)\n", p.GatedClockSaving*1e3)
	}
	fmt.Printf("hottest nets:\n")
	for _, n := range p.TopNets(5) {
		fmt.Printf("  %-20s %9.4f mW\n", n, p.PerNet[n]*1e3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
