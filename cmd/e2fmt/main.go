// Command e2fmt is the paper's E2FMT translator: EDIF netlist in, BLIF out
// (or BLIF in, EDIF out with -reverse).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/edif"
	"fpgaflow/internal/obs"
)

func main() {
	reverse := flag.Bool("reverse", false, "translate BLIF to EDIF instead")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: e2fmt [-reverse] [file]\nTranslates EDIF to BLIF on stdout.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "e2fmt")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var out string
	if *reverse {
		out, err = edif.BLIFToEDIF(src)
	} else {
		out, err = edif.E2FMT(src)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
