// Command sisopt is the SIS stage of the flow: technology-independent
// optimization and K-LUT technology mapping of a BLIF netlist.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/techmap"
)

func main() {
	k := flag.Int("k", 4, "LUT input count")
	mapOnly := flag.Bool("map-only", false, "skip optimization, only LUT-map")
	optOnly := flag.Bool("opt-only", false, "only optimize, skip LUT mapping")
	greedy := flag.Bool("greedy", false, "use the greedy area mapper instead of FlowMap")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sisopt [-k N] [-greedy] [-map-only|-opt-only] [file.blif]\nOptimizes and LUT-maps BLIF on stdout.\n")
	}
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "sisopt")
		return
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := netlist.ParseBLIF(src)
	if err != nil {
		fatal(err)
	}
	if !*mapOnly {
		if err := logic.Optimize(nl, logic.Options{}); err != nil {
			fatal(err)
		}
	}
	if *optOnly {
		fmt.Print(netlist.FormatBLIF(nl))
		return
	}
	if err := logic.Decompose(nl); err != nil {
		fatal(err)
	}
	var res *techmap.Result
	if *greedy {
		res, err = techmap.MapGreedy(nl, *k)
	} else {
		res, err = techmap.FlowMap(nl, *k)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sisopt: %d LUTs, depth %d\n", res.LUTs, res.Depth)
	fmt.Print(netlist.FormatBLIF(res.Netlist))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
