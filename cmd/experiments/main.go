// Command experiments regenerates the paper's tables and figures plus the
// architecture explorations; see EXPERIMENTS.md for the mapping.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/experiments"
	"fpgaflow/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment: table1|table2|table3|fig8|fig9|fig10|tristate|lutsize|clustersize|segment|headline|inputs|flow|all")
	small := flag.Bool("small", false, "use the small benchmark suite for flow sweeps")
	seed := flag.Int64("seed", 1, "seed")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "experiments")
		return
	}
	_, finishObs := obsFlags.Start("experiments")
	w := os.Stdout
	suite := circuits.Suite()
	if *small {
		suite = circuits.SmallSuite()
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sel := func(name string) bool { return *run == "all" || *run == name }
	if sel("table1") {
		_, err := experiments.Table1(w)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("table2") {
		_, err := experiments.Table2(w)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("table3") {
		_, err := experiments.Table3(w)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("fig8") {
		experiments.Fig8(w)
		fmt.Fprintln(w)
	}
	if sel("fig9") {
		experiments.Fig9(w)
		fmt.Fprintln(w)
	}
	if sel("fig10") {
		experiments.Fig10(w)
		fmt.Fprintln(w)
	}
	if sel("tristate") {
		experiments.TriState(w)
		fmt.Fprintln(w)
	}
	if sel("inputs") {
		isuite := experiments.UtilizationSuite()
		if *small {
			isuite = suite
		}
		_, err := experiments.ExploreClusterInputs(w, isuite)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("lutsize") {
		_, err := experiments.ExploreLUTSize(w, suite, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("clustersize") {
		_, err := experiments.ExploreClusterSize(w, suite, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("headline") {
		_, err := experiments.PaperVsBaseline(w, suite, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("segment") {
		_, err := experiments.ExploreSegmentLength(w, suite, *seed)
		fail(err)
		fmt.Fprintln(w)
	}
	if sel("flow") {
		_, err := experiments.FullFlow(w, suite, *seed, true)
		fail(err)
	}
	fail(finishObs())
}
