// Command fpgaweb serves the browser GUI of the design framework
// (paper §4.2): six stages from file upload to FPGA programming.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgaflow/internal/gui"
	"fpgaflow/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	grace := flag.Duration("grace", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "fpgaweb")
		return
	}
	s := gui.NewServer()
	fmt.Printf("FPGA design framework GUI on http://%s\n", *addr)
	fmt.Printf("machine-readable run metrics on http://%s/metrics\n", *addr)
	fmt.Printf("live telemetry: http://%s/events (SSE), http://%s/heatmap, http://%s/debug/pprof/\n", *addr, *addr, *addr)

	// SIGINT/SIGTERM drain in-flight requests (a running flow included)
	// instead of killing them mid-compile.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Run(ctx, *addr, *grace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fpgaweb: shut down cleanly")
}
