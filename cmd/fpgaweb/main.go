// Command fpgaweb serves the browser GUI of the design framework
// (paper §4.2): six stages from file upload to FPGA programming.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgaflow/internal/gui"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	flag.Parse()
	s := gui.NewServer()
	fmt.Printf("FPGA design framework GUI on http://%s\n", *addr)
	fmt.Printf("machine-readable run metrics on http://%s/metrics\n", *addr)
	if err := s.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
