// Command fpgaweb serves the browser GUI of the design framework
// (paper §4.2): six stages from file upload to FPGA programming, plus the
// multi-tenant compile-farm job API (/jobs) backed by the crash-safe job
// service in internal/jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgaflow/internal/gui"
	"fpgaflow/internal/jobs"
	"fpgaflow/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	grace := flag.Duration("grace", 30*time.Second, "graceful-shutdown budget for in-flight requests and job drain")
	jobsDir := flag.String("jobs-dir", "fpgaweb-jobs", "job service state directory (WAL + artifacts); empty disables the /jobs API")
	workers := flag.Int("workers", 2, "job worker pool size")
	queueLimit := flag.Int("queue-limit", 64, "max jobs waiting for a worker before submissions get 429")
	quotaRate := flag.Float64("quota-rate", 1, "per-tenant sustained submissions/second (0 disables rate limiting)")
	quotaBurst := flag.Int("quota-burst", 4, "per-tenant submission burst size")
	showVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		obs.PrintVersion(os.Stdout, "fpgaweb")
		return
	}
	s := gui.NewServer()
	if *jobsDir != "" {
		tr := obs.New("jobs")
		svc, err := jobs.Open(jobs.Config{
			Dir:         *jobsDir,
			Workers:     *workers,
			QueueLimit:  *queueLimit,
			TenantRate:  *quotaRate,
			TenantBurst: *quotaBurst,
			Obs:         tr,
			Events:      s.Bus,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.Jobs, s.JobsTrace = svc, tr
		if svc.TailDamage != nil {
			fmt.Printf("fpgaweb: WAL tail repaired on startup: %v\n", svc.TailDamage)
		}
		fmt.Printf("job API on http://%s/jobs (state in %s, %d workers)\n", *addr, *jobsDir, *workers)
	}
	fmt.Printf("FPGA design framework GUI on http://%s\n", *addr)
	fmt.Printf("machine-readable run metrics on http://%s/metrics (Prometheus: /metrics?format=prom)\n", *addr)
	fmt.Printf("per-job traces on http://%s/jobs/{id}/trace (Perfetto: ?format=chrome)\n", *addr)
	fmt.Printf("live telemetry: http://%s/events (SSE), http://%s/heatmap, http://%s/debug/pprof/\n", *addr, *addr, *addr)

	// SIGINT/SIGTERM drain in-flight requests (a running flow included) and
	// the job service (stop admitting, finish or checkpoint running jobs,
	// flush the WAL) instead of killing them mid-compile.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Run(ctx, *addr, *grace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fpgaweb: shut down cleanly")
}
