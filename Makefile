# Integrated FPGA design framework (IPPS 2004 reproduction).

GO ?= go

.PHONY: all build test short bench race cover tools experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

race:
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

tools:
	$(GO) build -o bin/ ./cmd/...

experiments: tools
	./bin/experiments

clean:
	rm -rf bin
