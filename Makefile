# Integrated FPGA design framework (IPPS 2004 reproduction).

GO ?= go

.PHONY: all build test short bench race cover tools experiments clean lint bench-gate baseline staticcheck vet-fix-list check-examples fuzz faultcheck soak

all: build test

lint: staticcheck
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

# staticcheck runs the repo's custom analyzers (tools/analyzers: the general
# hygiene passes plus the determinism suite — maporder, walltime, globalrand,
# sharedwrite, hotalloc, ctxdeadline) over every package via the vet driver
# protocol. See docs/STATIC_ANALYSIS.md for the catalogue and the
# //fpgavet:ignore suppression policy.
staticcheck:
	$(GO) build -o bin/fpgavet ./cmd/fpgavet
	$(GO) vet -vettool=bin/fpgavet ./...

# vet-fix-list emits every finding — suppressed ones included, with their
# reasons — as vet_report.jsonl, the suppression-burndown report CI uploads
# as an artifact. The target itself never fails: it is a report, not a gate
# (staticcheck is the gate).
vet-fix-list:
	$(GO) build -o bin/fpgavet ./cmd/fpgavet
	@rm -f vet_report.jsonl
	-FPGAVET_JSONL=$(abspath vet_report.jsonl) $(GO) vet -vettool=bin/fpgavet ./...
	@test -f vet_report.jsonl || : > vet_report.jsonl
	@echo "vet-fix-list: $$(wc -l < vet_report.jsonl) findings in vet_report.jsonl"

# check-examples lints the committed example artifacts and the built-in
# benchmark suite with the flow's stage-boundary rules (internal/check).
check-examples:
	$(GO) build -o bin/fpgalint ./cmd/fpgalint
	./bin/fpgalint examples/netlists/fulladder.blif examples/netlists/count2.blif examples/netlists/rand64.blif examples/netlists/fulladder.bit
	./bin/fpgalint -suite
	@./bin/fpgalint examples/netlists/multidriven.blif >/dev/null 2>&1; \
		if [ $$? -ne 1 ]; then \
			echo "check-examples: multidriven.blif should fail with exit 1"; exit 1; \
		fi
	@echo "check-examples: ok"

# fuzz runs every native fuzz target for FUZZTIME each (decoders and
# parsers that face untrusted or corruptible input). Override e.g.
# `make fuzz FUZZTIME=5m` for a longer soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/netlist/ -run='^$$' -fuzz=FuzzParseBLIF -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/vhdl/ -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bitstream/ -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/edif/ -run='^$$' -fuzz=FuzzRead -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/jobs/ -run='^$$' -fuzz=FuzzDecodeSpec -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/jobs/ -run='^$$' -fuzz=FuzzParseRecord -fuzztime=$(FUZZTIME)

# faultcheck runs the fault-injection and hardened-runner suites under the
# race detector: defect-aware place/route, corruption handling, stage
# timeouts/panics, the retry policy, and the cached-RR-graph defect-mask
# isolation regression.
faultcheck:
	$(GO) test -race -count=1 ./internal/fault/ ./internal/core/ ./internal/route/ -run 'Fault|Defect|Corrupt|Stuck|Stage|Retry|Escalat|Dead|Flip|Truncate|Garble'

# soak is the compile-farm chaos soak: SOAK_TENANTS tenants submit
# SOAK_JOBS jobs each across SOAK_KILLS simulated-SIGKILL/restart cycles,
# under the race detector, asserting zero lost and zero double-completed
# jobs (internal/jobs chaos harness). CI's farm-soak job runs this.
SOAK_TENANTS ?= 6
SOAK_JOBS ?= 8
SOAK_KILLS ?= 5
soak:
	$(GO) test -race -count=1 ./internal/jobs/ -run 'TestFarmSoak|TestKill|TestWALTailCorruption|TestNoOrphanedGoroutines' \
		-soak-tenants=$(SOAK_TENANTS) -soak-jobs=$(SOAK_JOBS) -soak-kills=$(SOAK_KILLS) -v

# bench-gate reruns the small suite and fails on tier-1 QoR drift vs the
# committed baseline (the same gate CI runs).
bench-gate:
	$(GO) run ./cmd/benchgate -emit BENCH_ci.json -baseline bench_baseline.json -tol 0.05

# baseline refreshes bench_baseline.json after an intentional QoR change.
baseline:
	$(GO) run ./cmd/benchgate -update bench_baseline.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

tools:
	$(GO) build -o bin/ ./cmd/...

experiments: tools
	./bin/experiments

clean:
	rm -rf bin
