package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// analyze typechecks one or more source files as package p (resolving any
// stdlib imports from GOROOT source, so no compiled export data is needed)
// and runs every analyzer over the result.
func analyze(t *testing.T, sources ...string) []Diagnostic {
	t.Helper()
	return analyzeAs(t, "p", sources...)
}

// analyzeAs is analyze with an explicit import path, so the fixtures can
// masquerade as flow-stage packages (fpgaflow/internal/...) and exercise
// the FlowStagesOnly gating.
func analyzeAs(t *testing.T, path string, sources ...string) []Diagnostic {
	t.Helper()
	fset, files, pkg, info := typecheckFixture(t, path, sources...)
	return Run(All(), fset, files, pkg, info)
}

// typecheckFixture parses and typechecks fixture sources under an import
// path, for tests that drive Run with a specific analyzer subset.
func typecheckFixture(t *testing.T, path string, sources ...string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range sources {
		name := "p" + string(rune('0'+i)) + ".go"
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, files, pkg, info
}

func messages(diags []Diagnostic, analyzer string) []string {
	var out []string
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out = append(out, d.Message)
		}
	}
	return out
}

func TestSeededRand(t *testing.T) {
	diags := analyze(t, `package p

import "math/rand"

func bad() int  { return rand.Intn(10) }
func bad2()     { rand.Seed(42) }
func good() int { return rand.New(rand.NewSource(1)).Intn(10) }
func typeOK(r *rand.Rand) {}
`)
	got := messages(diags, "seededrand")
	if len(got) != 2 {
		t.Fatalf("seededrand found %d issues, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0], "rand.Intn") || !strings.Contains(got[1], "rand.Seed") {
		t.Errorf("unexpected messages: %v", got)
	}
}

const obsFixture = `package p

type Span struct{}

func (s *Span) End() {}

type Trace struct{}

func (t *Trace) Start(name string) *Span { return &Span{} }
`

func TestSpanClose(t *testing.T) {
	diags := analyze(t, obsFixture, `package p

func leaky(tr *Trace) {
	sp := tr.Start("stage")
	_ = sp
}

func discards(tr *Trace) {
	_ = tr.Start("stage")
}

func balanced(tr *Trace) {
	sp := tr.Start("stage")
	defer sp.End()
}

func inlineEnd(tr *Trace) {
	sp := tr.Start("stage")
	sp.End()
}

func returned(tr *Trace) *Span {
	sp := tr.Start("stage")
	return sp
}

func nested(tr *Trace) {
	f := func() {
		sp := tr.Start("inner")
		_ = sp
	}
	f()
	outer := tr.Start("outer")
	outer.End()
}
`)
	got := messages(diags, "spanclose")
	if len(got) != 3 {
		t.Fatalf("spanclose found %d issues, want 3 (leaky, discards, nested-inner): %v", len(got), got)
	}
	for _, m := range got {
		if !strings.Contains(m, "never ended") && !strings.Contains(m, "discarded") {
			t.Errorf("unexpected message %q", m)
		}
	}
}

func TestDroppedError(t *testing.T) {
	diags := analyze(t, `package p

import (
	"fmt"
	"strings"
)

func mayFail() error        { return nil }
func pair() (int, error)    { return 0, nil }
func noErr()                {}

func bad() {
	mayFail()
	pair()
}

func good() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	_, _ = pair()
	noErr()
	fmt.Println("allowed")
	var b strings.Builder
	b.WriteString("allowed")
	return nil
}
`)
	got := messages(diags, "droppederror")
	if len(got) != 2 {
		t.Fatalf("droppederror found %d issues, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0], "p.mayFail") || !strings.Contains(got[1], "p.pair") {
		t.Errorf("unexpected messages: %v", got)
	}
}

func TestDroppedErrorSkipsTests(t *testing.T) {
	// The analyzer must not fire inside _test.go files; the fixture's file
	// naming in analyze() uses p<i>.go, so exercise the filter directly.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x_test.go", `package p

func mayFail() error { return nil }
func f()             { mayFail() }
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Analyzer{DroppedError}, fset, []*ast.File{f}, pkg, info); len(diags) != 0 {
		t.Fatalf("droppederror fired in a _test.go file: %v", diags)
	}
}
