package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxDeadline protects the hardened runner's contract (internal/core): a
// stage entry point that accepts a context.Context must actually honor it —
// pass it onward or check cancellation — and must not silently replace the
// caller's context with a fresh Background/TODO. A named ctx parameter that
// the body never references means the per-stage deadlines, retry
// cancellation and graceful-shutdown paths all dead-end at that function:
// the flow looks cancellable but is not. (An anonymous `_`/unnamed
// context.Context parameter is the explicit opt-out for interface
// conformance and stays allowed — what cannot be named cannot be
// mis-dropped.)
var CtxDeadline = &Analyzer{
	Name:      "ctxdeadline",
	Doc:       "a named context.Context parameter must be used (threaded onward or checked), and functions taking one must not call context.Background/TODO",
	SkipTests: true,
	Run:       runCtxDeadline,
}

func runCtxDeadline(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			params := ctxParams(pass, fn.Type)
			if len(params) == 0 {
				return true
			}
			for _, p := range params {
				if !usedIn(pass, fn.Body, p.obj) {
					pass.Reportf(p.id.Pos(), "context parameter %q is never used: thread it into sub-calls or check ctx.Err() so cancellation and stage deadlines propagate through %s", p.id.Name, fn.Name.Name)
				}
			}
			checkFreshContext(pass, fn)
			return true
		})
	}
}

type ctxParam struct {
	id  *ast.Ident
	obj types.Object
}

// ctxParams returns the named, non-blank context.Context parameters of a
// function type.
func ctxParams(pass *Pass, ft *ast.FuncType) []ctxParam {
	var out []ctxParam
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, ctxParam{id: name, obj: obj})
			}
		}
	}
	return out
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usedIn reports whether the body references the object.
func usedIn(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkFreshContext flags context.Background()/context.TODO() calls inside
// a function that already received a context: minting a fresh root context
// there severs the caller's deadline and cancellation.
func checkFreshContext(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			pass.Reportf(sel.Pos(), "context.%s inside %s, which already receives a ctx: this severs the caller's deadline and cancellation; derive from the parameter instead", sel.Sel.Name, fn.Name.Name)
		}
		return true
	})
}
