package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedError flags call statements that silently discard an error result:
// `f()` used as a statement when f's last result is an error. In a CAD flow
// a swallowed error usually means a silently wrong artifact several stages
// later (the bitstream codec ignoring a short write, a file close dropping
// an ENOSPC). Discarding explicitly with `_ = f()` is the sanctioned
// suppression and is not flagged.
var DroppedError = &Analyzer{
	Name: "droppederror",
	Doc:  "flag statement-position calls whose error result is silently discarded (use `_ =` to suppress)",
	// Tests drop errors idiomatically (t.Fatal covers the real ones); the
	// pass guards production code.
	SkipTests: true,
	Run:       runDroppedError,
}

// droppedErrorExempt lists callees whose error results are documented to be
// always nil (or are universally ignored by convention): fmt printing and
// the in-memory builders/buffers.
var droppedErrorExempt = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"(*strings.Builder)": true,
	"(*bytes.Buffer)":    true,
}

func runDroppedError(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !lastResultIsError(pass, call) || exemptCallee(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently dropped (handle it or discard with `_ =`)", calleeLabel(pass, call))
			return true
		})
	}
}

func lastResultIsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	var last types.Type
	switch r := t.(type) {
	case *types.Tuple:
		if r.Len() == 0 {
			return false
		}
		last = r.At(r.Len() - 1).Type()
	default:
		last = r
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCallee reports whether the call target is on the always-nil list.
func exemptCallee(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil {
		return droppedErrorExempt[pkg.Path()+"."+fn.Name()]
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type().String()
		// recv prints like *strings.Builder; match on the receiver type.
		return droppedErrorExempt["("+recv+")"]
	}
	return false
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return strings.TrimPrefix(sig.Recv().Type().String(), "*") + "." + fn.Name()
		}
		if pkg := fn.Pkg(); pkg != nil {
			return pkg.Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
