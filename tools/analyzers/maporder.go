package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder is the determinism suite's highest-value pass: inside the
// deterministic flow-stage packages it flags `range` over a map whose
// iteration order can leak into a returned or committed value. Go's map
// order is deliberately randomized, so one such leak makes the placement,
// routing or bitstream differ run-to-run — the exact property the golden
// QoR suite, rrgraph.Cache reuse and the worker-count determinism sweeps
// all depend on. The runtime sweeps only sample schedules; this pass closes
// the class at compile time.
//
// A map range is accepted only when its body is provably order-insensitive:
//
//   - commutative accumulation: x += e, x -= e, bit-ors/ands/xors, x++/x--;
//   - writes keyed by the iteration variable (m2[k] = v, delete(m2, k)):
//     each iteration touches a distinct key, so order cannot matter;
//   - min/max updates: `if cand < best { best = cand }` (any comparison
//     direction), the idiom reductions use;
//   - membership-style early returns of constants (`return true`);
//   - sorted-key extraction: appending keys/values to a slice that the same
//     function later passes to a sort.* or slices.Sort* call — the
//     canonical fix for every other shape.
//
// Everything else (appends never sorted, calls with side effects, writes to
// plain variables, non-constant returns, break) is flagged.
var MapOrder = &Analyzer{
	Name:           "maporder",
	Doc:            "forbid map iteration whose order can reach a committed result in flow-stage packages; extract sorted keys or keep the body order-insensitive",
	FlowStagesOnly: true,
	SkipTests:      true,
	Run:            runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (nested function literals get
// their own visit) for order-sensitive map ranges.
func checkMapRanges(pass *Pass, fnBody *ast.BlockStmt) {
	walkShallow(fnBody, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		mo := &mapOrderCheck{pass: pass, fnBody: fnBody, rs: rs}
		mo.noteLoopVar(rs.Key)
		mo.noteLoopVar(rs.Value)
		if ok := mo.orderInsensitive(rs.Body); !ok {
			return // already reported with a specific position
		}
		// Every append target must be sorted later in this function.
		for obj, pos := range mo.appended {
			if !sortedInFunc(pass, fnBody, obj) {
				pass.Reportf(pos, "keys of map range over %s are collected into %q but never sorted: sort the slice before its order can reach the result",
					types.ExprString(rs.X), obj.Name())
			}
		}
	})
}

type mapOrderCheck struct {
	pass   *Pass
	fnBody *ast.BlockStmt
	rs     *ast.RangeStmt
	// loopVars are the range's key/value objects plus locals declared from
	// them inside the body; indexing a sink by one of these is per-key and
	// therefore order-free.
	loopVars map[types.Object]bool
	// appended maps each slice object the body appends to, to the position
	// of the first append (for reporting when it is never sorted).
	appended map[*types.Var]token.Pos
}

func (mo *mapOrderCheck) noteLoopVar(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if obj := mo.pass.TypesInfo.Defs[id]; obj != nil {
			if mo.loopVars == nil {
				mo.loopVars = map[types.Object]bool{}
			}
			mo.loopVars[obj] = true
		}
	}
}

func (mo *mapOrderCheck) report(pos token.Pos, what string) bool {
	mo.pass.Reportf(pos, "map iteration order reaches the result (%s) in range over %s: extract sorted keys or restructure the loop to be order-insensitive",
		what, types.ExprString(mo.rs.X))
	return false
}

// orderInsensitive walks one statement list, reporting and returning false
// at the first order-sensitive construct.
func (mo *mapOrderCheck) orderInsensitive(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !mo.stmtOK(st) {
			return false
		}
	}
	return true
}

func (mo *mapOrderCheck) stmtOK(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return true
		}
		return mo.report(s.Pos(), "loop exit depends on which key comes first")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !isConstExpr(mo.pass, r) {
				return mo.report(s.Pos(), "early return of a key-dependent value")
			}
		}
		return true
	case *ast.AssignStmt:
		return mo.assignOK(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(mo.pass, call, "delete") {
			return true
		}
		return mo.report(s.Pos(), "call with unknown ordering effects")
	case *ast.IfStmt:
		if isMinMaxUpdate(s) {
			return true
		}
		if !mo.orderInsensitive(s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return mo.orderInsensitive(e)
		case *ast.IfStmt:
			return mo.stmtOK(e)
		}
		return mo.report(s.Else.Pos(), "unsupported else branch")
	case *ast.BlockStmt:
		return mo.orderInsensitive(s)
	case *ast.RangeStmt, *ast.ForStmt:
		var b *ast.BlockStmt
		if r, ok := s.(*ast.RangeStmt); ok {
			b = r.Body
		} else {
			b = s.(*ast.ForStmt).Body
		}
		return mo.orderInsensitive(b)
	}
	return mo.report(st.Pos(), "unsupported statement kind")
}

// assignOK classifies one assignment inside a map-range body.
func (mo *mapOrderCheck) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true // commutative accumulation
	case token.DEFINE:
		// Locals derived from the loop variables stay per-key sinks.
		for _, l := range s.Lhs {
			mo.noteLoopVar(l)
		}
		return true
	case token.ASSIGN:
		// x = append(x, ...) collects into a slice; the slice must later be
		// sorted (checked by the caller).
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(mo.pass, call, "append") &&
				len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[0]) {
				if obj := rootVar(mo.pass, s.Lhs[0]); obj != nil {
					if mo.appended == nil {
						mo.appended = map[*types.Var]token.Pos{}
					}
					if _, seen := mo.appended[obj]; !seen {
						mo.appended[obj] = s.Pos()
					}
					return true
				}
			}
		}
		for _, l := range s.Lhs {
			if !mo.lhsOK(l) {
				return mo.report(s.Pos(), "plain write whose final value depends on iteration order")
			}
		}
		return true
	}
	return mo.report(s.Pos(), "unsupported assignment")
}

// lhsOK accepts order-free plain-assignment targets: the blank identifier,
// a body-local variable, and index writes keyed by a loop variable.
func (mo *mapOrderCheck) lhsOK(l ast.Expr) bool {
	switch e := l.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := mo.pass.TypesInfo.Uses[e]
		return obj != nil && mo.loopVars[obj]
	case *ast.IndexExpr:
		return mo.mentionsLoopVar(e.Index)
	}
	return false
}

// mentionsLoopVar reports whether the expression references a range key or
// value variable (a per-key index).
func (mo *mapOrderCheck) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := mo.pass.TypesInfo.Uses[id]; obj != nil && mo.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMinMaxUpdate matches `if cand OP best { best = cand }` for a comparison
// OP — the running-extremum idiom, which commutes. The optional init
// statement (`if cand := f(); cand < best { ... }`) is allowed.
func isMinMaxUpdate(s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, rhs := types.ExprString(asg.Lhs[0]), types.ExprString(asg.Rhs[0])
	x, y := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// sortedInFunc reports whether fnBody contains a sort.*/slices.Sort* call
// taking obj as an argument.
func sortedInFunc(pass *Pass, fnBody *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[aid] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootVar resolves an assignable expression to its base variable.
func rootVar(pass *Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// isConstExpr reports whether the expression is a compile-time constant
// (an early `return true` in a membership scan is order-free).
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
