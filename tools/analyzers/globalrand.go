package analyzers

import (
	"go/ast"
	"go/types"
)

// GlobalRand extends seededrand inside the deterministic flow-stage
// packages: all randomness there must visibly flow from the stage's plumbed
// seed. seededrand (which runs everywhere) already bans the global
// math/rand source; this pass additionally forbids
//
//   - math/rand/v2, whose package-level functions are auto-seeded from the
//     runtime and cannot be made reproducible;
//   - crypto/rand, which is non-deterministic by design;
//   - rand.New whose argument is anything but an inline
//     rand.NewSource(seed) call — constructing the source elsewhere hides
//     the seed's provenance from review, which is exactly how an unseeded
//     or time-seeded source slips into a stage.
var GlobalRand = &Analyzer{
	Name:           "globalrand",
	Doc:            "flow-stage randomness must be rand.New(rand.NewSource(seed)) from the plumbed seed; no math/rand/v2 or crypto/rand",
	FlowStagesOnly: true,
	SkipTests:      true,
	Run:            runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand/v2":
				pass.Reportf(sel.Pos(), "math/rand/v2.%s is auto-seeded and unreproducible: use math/rand with rand.New(rand.NewSource(seed))", sel.Sel.Name)
			case "crypto/rand":
				pass.Reportf(sel.Pos(), "crypto/rand.%s is non-deterministic by design: flow stages must draw from the plumbed seed", sel.Sel.Name)
			case "math/rand":
				if sel.Sel.Name == "New" {
					checkRandNew(pass, sel)
				}
			}
			return true
		})
	}
}

// checkRandNew requires every rand.New call in stage code to take an inline
// rand.NewSource(...) argument so the seed is auditable at the call site.
func checkRandNew(pass *Pass, sel *ast.SelectorExpr) {
	call := enclosingCall(pass, sel)
	if call == nil {
		return // rand.New used as a value; out of scope
	}
	if len(call.Args) == 1 {
		if src, ok := call.Args[0].(*ast.CallExpr); ok {
			if ssel, ok := src.Fun.(*ast.SelectorExpr); ok && ssel.Sel.Name == "NewSource" {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "rand.New without an inline rand.NewSource(seed): construct the generator as rand.New(rand.NewSource(seed)) so the seed's provenance is visible")
}

// enclosingCall finds the CallExpr whose Fun is exactly sel, by re-walking
// the files (the framework passes no parent links).
func enclosingCall(pass *Pass, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, f := range pass.Files {
		if sel.Pos() < f.Pos() || sel.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
				found = call
				return false
			}
			return true
		})
	}
	return found
}
