// Package analyzers holds the repo's custom static-analysis passes and the
// minimal framework they run on. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Report) but is built on
// the standard library only, because the repository is deliberately
// dependency-free. cmd/fpgavet adapts these passes to the `go vet -vettool`
// unitchecker protocol so they run over every package in CI.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	// Doc is a one-line description of what the pass enforces.
	Doc string
	Run func(*Pass)
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	out := []*Analyzer{SeededRand, SpanClose, DroppedError}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run applies the analyzers to one type-checked package and returns the
// findings sorted by position.
func Run(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	for _, a := range as {
		pass := &Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			analyzer:  a,
			diags:     &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}
