// Package analyzers holds the repo's custom static-analysis passes and the
// minimal framework they run on. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Report) but is built on
// the standard library only, because the repository is deliberately
// dependency-free. cmd/fpgavet adapts these passes to the `go vet -vettool`
// unitchecker protocol so they run over every package in CI.
//
// Beyond the general hygiene passes (seededrand, spanclose, droppederror)
// the suite enforces the framework's central determinism contract — the
// parallel placer and router are bit-identical at every worker count — at
// compile time: maporder, walltime, globalrand, sharedwrite and ctxdeadline
// police the deterministic flow-stage packages, and hotalloc polices loops
// marked //fpga:hotloop anywhere. See docs/STATIC_ANALYSIS.md for the
// catalogue.
//
// # Suppression
//
// A finding that is understood and accepted is burned down explicitly with
// an inline directive carrying a mandatory reason:
//
//	//fpgavet:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. Suppressed
// diagnostics stay in the report (Diagnostic.Suppressed) so the burndown is
// auditable, but they do not fail the build. The directives themselves are
// linted: a reasonless directive, a directive naming an unknown analyzer,
// and a stale directive that no longer matches any diagnostic each produce
// an error-severity "fpgavet" diagnostic, so the committed suppression
// baseline can never rot silently.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	// Doc is a one-line description of what the pass enforces.
	Doc string
	// FlowStagesOnly restricts the pass to the deterministic flow-stage
	// packages (see flowStagePkg): the code whose outputs are committed to
	// artifacts and must be a pure function of inputs and seeds.
	FlowStagesOnly bool
	// SkipTests excludes *_test.go files from the pass.
	SkipTests bool
	Run       func(*Pass)
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding matched by a //fpgavet:ignore directive:
	// reported for auditability (the burndown report includes it) but not a
	// build failure. SuppressReason is the directive's mandatory reason.
	Suppressed     bool
	SuppressReason string
}

// flowStagePkgs are the deterministic flow-stage packages: everything they
// commit to an artifact (placement, routes, bitstream, defect maps, cached
// RR graphs) must be reproducible bit-for-bit from inputs and seeds.
var flowStagePkgs = map[string]bool{
	"fpgaflow/internal/place":   true,
	"fpgaflow/internal/route":   true,
	"fpgaflow/internal/pack":    true,
	"fpgaflow/internal/core":    true,
	"fpgaflow/internal/rrgraph": true,
	"fpgaflow/internal/fault":   true,
	// The job service commits durable state (the WAL, artifacts) and runs
	// a worker pool over the flow, so it is held to the same discipline:
	// sharedwrite polices its goroutines, and its one sanctioned
	// wall-clock read is an explicit, reasoned suppression.
	"fpgaflow/internal/jobs": true,
}

// flowStagePkg reports whether a package path is flow-stage code. Vet runs
// test variants under paths like "pkg [pkg.test]"; the variant carries the
// same non-test sources, so it is matched by its base path.
func flowStagePkg(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return flowStagePkgs[path]
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	out := []*Analyzer{
		SeededRand, SpanClose, DroppedError,
		MapOrder, WallTime, GlobalRand, SharedWrite, HotAlloc, CtxDeadline,
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run applies the analyzers to one type-checked package, applies the
// //fpgavet:ignore suppressions, and returns all findings — suppressed ones
// included, flagged — sorted by position across files (then by analyzer and
// message) so the output is byte-stable for CI.
func Run(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range as {
		ran[a.Name] = true
		if a.FlowStagesOnly && !flowStagePkg(pkg.Path()) {
			continue
		}
		pfiles := files
		if a.SkipTests {
			pfiles = nil
			for _, f := range files {
				if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
					pfiles = append(pfiles, f)
				}
			}
		}
		pass := &Pass{
			Fset:      fset,
			Files:     pfiles,
			Pkg:       pkg,
			TypesInfo: info,
			analyzer:  a,
			diags:     &diags,
		}
		a.Run(pass)
	}
	diags = applySuppressions(fset, files, diags, ran)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// ignoreDirective is one parsed //fpgavet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	file     string
	line     int
	used     bool
}

const ignorePrefix = "fpgavet:ignore"

// parseIgnores extracts every //fpgavet:ignore directive from the files.
func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				p := fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), file: p.Filename, line: p.Line}
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					d.analyzer, d.reason = rest[:i], strings.TrimSpace(rest[i+1:])
				} else {
					d.analyzer = rest
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions matches directives to diagnostics (same file, same
// analyzer, on the directive's line or the line directly below it) and
// lints the directives themselves. ran restricts staleness checking to
// analyzers that actually executed, so partial runs (tests exercising one
// pass) never report another pass's directives as stale.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	directives := parseIgnores(fset, files)
	if len(directives) == 0 {
		return diags
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for i := range diags {
		d := &diags[i]
		for _, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
				dir.used = true
				if dir.reason != "" {
					d.Suppressed = true
					d.SuppressReason = dir.reason
				}
			}
		}
	}
	for _, dir := range directives {
		switch {
		case !known[dir.analyzer]:
			diags = append(diags, Diagnostic{
				Analyzer: "fpgavet", Pos: fset.Position(dir.pos),
				Message: fmt.Sprintf("//fpgavet:ignore names unknown analyzer %q", dir.analyzer),
			})
		case dir.reason == "":
			diags = append(diags, Diagnostic{
				Analyzer: "fpgavet", Pos: fset.Position(dir.pos),
				Message: fmt.Sprintf("//fpgavet:ignore %s is missing a reason: every suppression must say why", dir.analyzer),
			})
		case !dir.used && ran[dir.analyzer]:
			diags = append(diags, Diagnostic{
				Analyzer: "fpgavet", Pos: fset.Position(dir.pos),
				Message: fmt.Sprintf("stale //fpgavet:ignore: no %s diagnostic here anymore; delete the directive", dir.analyzer),
			})
		}
	}
	return diags
}
