package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces alloc-free inner loops. A loop annotated with a
// //fpga:hotloop comment (on the line directly above the `for`) is a
// declared hot path — the router's frontier pop loop, the annealer's
// ordered-commit loop — where a per-iteration heap allocation multiplies
// into millions of allocations per run (the obs span alloc deltas make the
// damage visible; this pass stops it from landing). Inside a marked loop,
// including nested loops, the pass flags
//
//   - make(...) and new(...);
//   - &T{...} and slice/map composite literals (heap allocations);
//   - function literals (the closure header allocates every iteration);
//   - append whose result does not feed straight back into its own first
//     argument (`x = append(x, ...)` reuses x's backing array and is the
//     sanctioned arena idiom; anything else can grow or escape).
//
// Value struct literals, calls, and arithmetic are free and stay allowed.
// The check is syntactic and per-loop: allocations inside functions called
// from the loop are attributed to those functions' own marked loops.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid make/new/closure/composite-literal/growing-append allocations inside loops marked //fpga:hotloop",
	SkipTests: true,
	Run:       runHotAlloc,
}

const hotLoopMarker = "fpga:hotloop"

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		marks := hotLoopLines(pass, f)
		if len(marks) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if !marks[line-1] && !marks[line] {
				return true
			}
			checkHotLoop(pass, body)
			return false // nested loops are already covered by the walk
		})
	}
}

// hotLoopLines returns the set of source lines carrying a hotloop marker.
func hotLoopLines(pass *Pass, f *ast.File) map[int]bool {
	marks := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, hotLoopMarker) {
				marks[pass.Fset.Position(c.End()).Line] = true
			}
		}
	}
	return marks
}

// checkHotLoop flags allocation sites in one hot loop body. Function
// literals are reported but not descended into (the literal itself is the
// allocation; its body runs under its own accounting).
func checkHotLoop(pass *Pass, body *ast.BlockStmt) {
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		if call, ok := asg.Rhs[0].(*ast.CallExpr); ok && isBuiltin(pass, call, "append") &&
			len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(asg.Lhs[0]) {
			selfAppend[call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure literal inside //fpga:hotloop loop allocates every iteration: hoist it out of the loop")
			return false
		case *ast.CallExpr:
			if isBuiltin(pass, e, "make") || isBuiltin(pass, e, "new") {
				pass.Reportf(e.Pos(), "%s inside //fpga:hotloop loop allocates every iteration: hoist the buffer out and reuse it", e.Fun.(*ast.Ident).Name)
			} else if isBuiltin(pass, e, "append") && !selfAppend[e] {
				pass.Reportf(e.Pos(), "append inside //fpga:hotloop loop does not feed back into its first argument: it can grow or escape every iteration (use x = append(x, ...) over a reused buffer)")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, isLit := e.X.(*ast.CompositeLit); isLit {
					pass.Reportf(e.Pos(), "&composite literal inside //fpga:hotloop loop heap-allocates every iteration: reuse a hoisted value")
					return false
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "%s literal inside //fpga:hotloop loop allocates every iteration: hoist and reuse it", typeKindName(t))
				return false
			}
		}
		return true
	})
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
