package analyzers

// Golden fixture harness for the determinism suite. Each fixture is one
// source file typechecked under a chosen import path (flow-stage paths
// exercise the FlowStagesOnly gating) and annotated inline: a line whose
// trailing comment reads `// WANT: <substring>` must produce exactly one
// unsuppressed diagnostic of the case's analyzer on that line, whose
// message contains the substring. Unannotated lines must stay clean —
// the harness compares the full diagnostic list, so fixtures pin both
// the positives and the negatives (the sanctioned idioms).

import (
	"strings"
	"testing"
)

type finding struct {
	line   int
	substr string
}

// wantsFrom extracts the `// WANT:` expectations from a fixture, in line
// order (matching the sorted diagnostic order Run guarantees).
func wantsFrom(src string) []finding {
	const marker = "// WANT: "
	var out []finding
	for i, line := range strings.Split(src, "\n") {
		if j := strings.Index(line, marker); j >= 0 {
			out = append(out, finding{line: i + 1, substr: strings.TrimSpace(line[j+len(marker):])})
		}
	}
	return out
}

func TestDeterminismFixtures(t *testing.T) {
	tests := []struct {
		name     string
		pkg      string
		analyzer string
		src      string
	}{
		{
			name:     "maporder",
			pkg:      "fpgaflow/internal/pack",
			analyzer: "maporder",
			src: `package pack

import "sort"

func counts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // WANT: never sorted
	}
	return out
}

func last(m map[string]int) string {
	var got string
	for k := range m {
		got = k // WANT: plain write
	}
	return got
}

func firstEffect(m map[string]func()) {
	for _, f := range m {
		f() // WANT: unknown ordering effects
	}
}

func minVal(m map[string]int) int {
	best := 1 << 30
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func hasNeg(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
`,
		},
		{
			name:     "walltime",
			pkg:      "fpgaflow/internal/core",
			analyzer: "walltime",
			src: `package core

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // WANT: wall-clock read time.Now
}

func deadlineIn(t0 time.Time) time.Duration {
	return time.Until(t0) // WANT: wall-clock read time.Until
}

func pace(d time.Duration) {
	time.Sleep(d)
}
`,
		},
		{
			name:     "globalrand",
			pkg:      "fpgaflow/internal/place",
			analyzer: "globalrand",
			src: `package place

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
)

func entropy(b []byte) (int, error) {
	return crand.Read(b) // WANT: non-deterministic by design
}

func autoSeeded() uint64 {
	return randv2.Uint64() // WANT: auto-seeded
}

func hiddenSource(src rand.Source) *rand.Rand {
	return rand.New(src) // WANT: without an inline rand.NewSource
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`,
		},
		{
			name:     "sharedwrite",
			pkg:      "fpgaflow/internal/route",
			analyzer: "sharedwrite",
			src: `package route

import "sync"

func fanOut(items []int) ([]int, int) {
	out := make([]int, len(items))
	seen := make(map[int]bool)
	total := 0
	ptr := &total
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += 2 {
				v := items[i] * 2
				out[i] = v
				total += v     // WANT: writes captured variable
				seen[i] = true // WANT: writes captured map
				*ptr = v       // WANT: through captured pointer
			}
		}(w)
	}
	wg.Wait()
	return out, total
}
`,
		},
		{
			name:     "hotalloc",
			pkg:      "p", // not flow-gated: hot loops are policed everywhere
			analyzer: "hotalloc",
			src: `package p

type point struct{ x, y int }

func hot(items []int) []int {
	out := make([]int, 0, len(items))
	scratch := make([]int, 0, 8)
	//fpga:hotloop
	for _, it := range items {
		scratch = append(scratch, it)
		out = append(out, it*2)
		p := point{x: it, y: it}
		_ = p
		buf := make([]int, 4) // WANT: make inside
		_ = buf
		f := func() int { return it } // WANT: closure literal
		_ = f
		grown := append(items, it) // WANT: does not feed back
		_ = grown
		pair := []int{it, it} // WANT: slice literal
		_ = pair
		for j := 0; j < it; j++ {
			inner := make([]int, 1) // WANT: make inside
			_ = inner
		}
	}
	for range items {
		cold := make([]int, 1)
		_ = cold
	}
	return out
}
`,
		},
		{
			name:     "ctxdeadline",
			pkg:      "p", // not flow-gated: the runner contract spans the repo
			analyzer: "ctxdeadline",
			src: `package p

import "context"

func dropped(ctx context.Context, n int) int { return n * 2 } // WANT: never used

func severed(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c2, cancel := context.WithTimeout(context.Background(), 0) // WANT: severs the caller
	defer cancel()
	return c2.Err()
}

func threaded(ctx context.Context) error { return worker(ctx) }

func worker(ctx context.Context) error { return ctx.Err() }

func optOut(_ context.Context) {}
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			want := wantsFrom(tc.src)
			var got []Diagnostic
			for _, d := range analyzeAs(t, tc.pkg, tc.src) {
				if d.Analyzer == tc.analyzer && !d.Suppressed {
					got = append(got, d)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s: got %d diagnostics, want %d:\n%+v", tc.analyzer, len(got), len(want), got)
			}
			for i, w := range want {
				if got[i].Pos.Line != w.line || !strings.Contains(got[i].Message, w.substr) {
					t.Errorf("finding %d: got line %d %q, want line %d containing %q",
						i, got[i].Pos.Line, got[i].Message, w.line, w.substr)
				}
			}
		})
	}
}

func TestFlowStageGating(t *testing.T) {
	src := `package x

import "time"

var t0 = time.Now()
`
	if got := messages(analyzeAs(t, "example.com/outside", src), "walltime"); len(got) != 0 {
		t.Errorf("walltime fired outside flow-stage packages: %v", got)
	}
	if got := messages(analyzeAs(t, "fpgaflow/internal/route", src), "walltime"); len(got) != 1 {
		t.Errorf("walltime found %d issues in a flow-stage package, want 1: %v", len(got), got)
	}
	// Vet runs test variants under "pkg [pkg.test]"; the variant carries the
	// same non-test sources and must stay gated in.
	variant := "fpgaflow/internal/route [fpgaflow/internal/route.test]"
	if got := messages(analyzeAs(t, variant, src), "walltime"); len(got) != 1 {
		t.Errorf("walltime found %d issues in the test variant, want 1: %v", len(got), got)
	}
}

func TestSuppressionDirectives(t *testing.T) {
	diags := analyzeAs(t, "fpgaflow/internal/place", `package place

import "time"

func a() time.Time {
	//fpgavet:ignore walltime stage telemetry, never in artifacts
	return time.Now()
}

func b() time.Time {
	//fpgavet:ignore walltime
	return time.Now()
}

//fpgavet:ignore nosuchpass it seemed wise
func c() {}

func d() int {
	//fpgavet:ignore walltime this finding is long gone
	return 1
}
`)
	var wall []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "walltime" {
			wall = append(wall, d)
		}
	}
	if len(wall) != 2 {
		t.Fatalf("want 2 walltime diagnostics (one suppressed, one not), got %+v", wall)
	}
	if !wall[0].Suppressed || wall[0].SuppressReason != "stage telemetry, never in artifacts" {
		t.Errorf("reasoned directive did not suppress with its reason: %+v", wall[0])
	}
	if wall[1].Suppressed {
		t.Errorf("reasonless directive must not suppress: %+v", wall[1])
	}
	lint := messages(diags, "fpgavet")
	if len(lint) != 3 {
		t.Fatalf("want 3 directive-lint diagnostics, got %v", lint)
	}
	for i, substr := range []string{"missing a reason", "unknown analyzer", "stale"} {
		found := false
		for _, m := range lint {
			if strings.Contains(m, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("directive-lint diagnostic %d: none of %v contains %q", i, lint, substr)
		}
	}
}

func TestStalenessOnlyForRanAnalyzers(t *testing.T) {
	// A partial run (one analyzer) must not call another pass's directive
	// stale: Run only checks staleness for analyzers that executed.
	src := `package place

func f() int {
	//fpgavet:ignore walltime telemetry only
	return 1
}
`
	fset, files, pkg, info := typecheckFixture(t, "fpgaflow/internal/place", src)
	diags := Run([]*Analyzer{DroppedError}, fset, files, pkg, info)
	if got := messages(diags, "fpgavet"); len(got) != 0 {
		t.Errorf("partial run reported staleness for a pass that never ran: %v", got)
	}
	diags = Run([]*Analyzer{WallTime}, fset, files, pkg, info)
	if got := messages(diags, "fpgavet"); len(got) != 1 || !strings.Contains(got[0], "stale") {
		t.Errorf("full run should report the stale directive, got %v", got)
	}
}

func TestDiagnosticsSortedAcrossFiles(t *testing.T) {
	fileA := `package route

import "time"

var a0 = time.Now()

var a1 = time.Now()
`
	fileB := `package route

import "time"

var b0 = time.Now()
`
	diags := analyzeAs(t, "fpgaflow/internal/route", fileA, fileB)
	if len(diags) < 3 {
		t.Fatalf("want at least 3 diagnostics, got %+v", diags)
	}
	for i := 1; i < len(diags); i++ {
		p, q := diags[i-1].Pos, diags[i].Pos
		if p.Filename > q.Filename || (p.Filename == q.Filename && p.Line > q.Line) {
			t.Errorf("diagnostics not sorted: %s:%d before %s:%d", p.Filename, p.Line, q.Filename, q.Line)
		}
	}
}
