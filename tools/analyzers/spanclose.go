package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanClose requires every observability span opened with Start to be closed
// in the same function: an assignment `sp := tr.Start("...")` whose result
// is a *Span must be followed by `sp.End()` (plain or deferred) before the
// function returns. A leaked span corrupts the trace tree — its children
// attach under the wrong parent and the flow's per-stage timings (the QoR
// gate input) are wrong.
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "require Span.End() in the same function as the Trace.Start() that opened the span",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpansIn(pass, body)
			}
			return true
		})
	}
}

// checkSpansIn inspects one function body (not nested function literals —
// each gets its own visit) for Start assignments without a matching End.
func checkSpansIn(pass *Pass, body *ast.BlockStmt) {
	type open struct {
		name string
		pos  token.Pos
	}
	var opened []open
	ended := map[string]bool{}
	walkShallow(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !isSpanStart(pass, rhs) || i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					// Stored into a field or element: the obligation moves
					// with the value; out of scope for this pass.
					continue
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "span from Start is discarded; assign it and call End()")
					continue
				}
				opened = append(opened, open{id.Name, rhs.Pos()})
			}
		case *ast.ExprStmt:
			if name, ok := spanEndCall(st.X); ok {
				ended[name] = true
			}
		case *ast.DeferStmt:
			if name, ok := spanEndCall(st.Call); ok {
				ended[name] = true
			}
		case *ast.ReturnStmt:
			// A span returned to the caller transfers the obligation.
			for _, r := range st.Results {
				if id, ok := r.(*ast.Ident); ok {
					ended[id.Name] = true
				}
			}
		}
	})
	for _, o := range opened {
		if !ended[o.name] {
			pass.Reportf(o.pos, "span %q is started but never ended in this function", o.name)
		}
	}
}

// walkShallow visits every node under body except the interiors of nested
// function literals.
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isSpanStart reports whether expr is a call yielding a *Span (by type) from
// a method or function named Start.
func isSpanStart(pass *Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	return isSpanPtr(pass.TypesInfo.TypeOf(call))
}

// isSpanPtr matches *T where T's name is Span. The name-based match (rather
// than an exact fpgaflow/internal/obs identity) lets the pass work both on
// the real repo and on self-contained test fixtures.
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// spanEndCall matches `x.End()` and returns x's name.
func spanEndCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}
