package analyzers

import (
	"go/ast"
	"go/types"
)

// WallTime forbids wall-clock reads (time.Now, time.Since, time.Until) in
// the deterministic flow-stage packages. A stage result that depends on the
// clock is unreproducible by construction: the same netlist, seed and
// worker count must yield the bit-identical placement, routing and
// bitstream, or the golden QoR suite and the rrgraph cache's fingerprint
// reuse are unsound. Timing telemetry belongs in internal/obs spans and
// event timestamps, which live outside the stage packages; a measurement
// that genuinely must stay inline is suppressed with a reasoned
// //fpgavet:ignore (the two stage-span reads in internal/core are the
// committed baseline).
var WallTime = &Analyzer{
	Name:           "walltime",
	Doc:            "forbid time.Now/Since/Until in deterministic flow-stage code; timing belongs in internal/obs spans",
	FlowStagesOnly: true,
	SkipTests:      true,
	Run:            runWallTime,
}

// wallTimeBanned are the time package members that read the wall clock.
// Durations, timers and tickers (time.After in the stage-abandonment path)
// schedule work; they do not leak the clock into a computed result.
var wallTimeBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallTimeBanned[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic stage code: stage results must be a pure function of inputs and seed (move timing into internal/obs spans)", sel.Sel.Name)
			}
			return true
		})
	}
}
