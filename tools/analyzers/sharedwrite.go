package analyzers

import (
	"go/ast"
	"go/types"
)

// SharedWrite polices the snapshot-evaluate/ordered-commit worker closures
// the parallel annealer (place/anneal.go) and router (route/search.go,
// route.go) are built on. Inside a `go func(...)` literal in flow-stage
// code, the only sanctioned writes to captured state are slice-element
// slot writes (`results[i] = ...`, `&batch[i]` handed to a pure evaluator):
// each worker owns disjoint slots, so commits stay ordered and the result
// is bit-identical at every worker count. A write to a captured plain
// variable, a captured map, a captured struct field, or through a captured
// pointer is exactly the data race the -race determinism sweeps can miss
// when the schedule happens not to interleave — flagged here so it can
// never land.
var SharedWrite = &Analyzer{
	Name:           "sharedwrite",
	Doc:            "inside go-routine closures in flow-stage code, only per-worker slice slots may be written; no writes to captured variables, maps or fields",
	FlowStagesOnly: true,
	SkipTests:      true,
	Run:            runSharedWrite,
}

func runSharedWrite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWorkerBody(pass, lit)
			return true
		})
	}
}

// checkWorkerBody flags captured-state writes inside one worker closure.
// Nested function literals run on the same goroutine (defers, helpers) and
// are included; nested `go` statements get their own top-level visit.
func checkWorkerBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.GoStmt); ok {
			if _, isLit := inner.Call.Fun.(*ast.FuncLit); isLit {
				return false
			}
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, l := range st.Lhs {
				checkWriteTarget(pass, lit, l)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, lit, st.X)
		}
		return true
	})
}

// checkWriteTarget classifies one assignment target inside a worker
// closure. Walking toward the base: a slice/array index step legitimizes
// the write (a batch slot); reaching a captured identifier, a captured map
// index, or a dereference of a captured pointer without passing a slot
// step is a shared write.
func checkWriteTarget(pass *Pass, lit *ast.FuncLit, l ast.Expr) {
	for {
		switch e := l.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			// A := target defines a closure-local; fine.
			if pass.TypesInfo.Defs[e] != nil {
				return
			}
			obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
			if ok && capturedBy(lit, obj) {
				pass.Reportf(e.Pos(), "worker goroutine writes captured variable %q: workers may only fill their own batch slot (a slice element); route other results through the ordered commit", e.Name)
			}
			return
		case *ast.IndexExpr:
			t := pass.TypesInfo.TypeOf(e.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if obj := rootVar(pass, e.X); obj != nil && capturedBy(lit, obj) {
						pass.Reportf(e.Pos(), "worker goroutine writes captured map %q: map writes are unsynchronized and commit order is lost; collect into per-worker slots instead", obj.Name())
					}
					return
				}
			}
			return // slice/array slot write: the sanctioned pattern
		case *ast.StarExpr:
			if obj := rootVar(pass, e.X); obj != nil && capturedBy(lit, obj) {
				pass.Reportf(e.Pos(), "worker goroutine writes through captured pointer %q: the pointee is shared across workers", obj.Name())
			}
			return
		case *ast.SelectorExpr:
			l = e.X
		case *ast.ParenExpr:
			l = e.X
		default:
			return
		}
	}
}

// capturedBy reports whether a variable is declared outside the literal's
// source range — i.e. captured from the enclosing function (or package
// scope) rather than a parameter or local of the closure itself.
func capturedBy(lit *ast.FuncLit, obj *types.Var) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
