package analyzers

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the global math/rand functions (rand.Intn, rand.Seed,
// rand.Float64, ...). The flow's results must be reproducible from the Seed
// options plumbed through every stage; the shared global source makes runs
// order-dependent and untestable. Constructing explicit sources via
// rand.New/rand.NewSource (and naming the types) stays allowed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid the global math/rand source; use rand.New(rand.NewSource(seed)) plumbed from an explicit seed",
	Run:  runSeededRand,
}

// seededRandAllowed are the math/rand package members that do not touch the
// global source.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true, // type
	"Source":    true, // type
	"Source64":  true, // type
	"Zipf":      true, // type
}

func runSeededRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "math/rand" {
				return true
			}
			if !seededRandAllowed[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "use of global math/rand.%s: plumb an explicit *rand.Rand from a seed instead", sel.Sel.Name)
			}
			return true
		})
	}
}
