// Benchmark suite: runs every generated benchmark circuit (the MCNC
// substitute) through the complete flow and prints the per-design table —
// LUTs, depth, CLBs, channel width, critical path, power, bitstream size,
// and whether the bitstream verified against the source.
//
// Run with: go run ./examples/benchsuite [-small]
package main

import (
	"flag"
	"log"
	"os"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "use the small suite")
	verify := flag.Bool("verify", true, "verify each bitstream against its source")
	flag.Parse()
	suite := circuits.Suite()
	if *small {
		suite = circuits.SmallSuite()
	}
	if _, err := experiments.FullFlow(os.Stdout, suite, 1, *verify); err != nil {
		log.Fatal(err)
	}
}
