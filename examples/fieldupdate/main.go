// Field update: partial reconfiguration of a deployed design. Two revisions
// of a design are compiled onto the SAME fabric; the bitstream delta shows
// how little of the configuration has to be rewritten to move a deployed
// device from revision 1 to revision 2.
//
// Run with: go run ./examples/fieldupdate
package main

import (
	"fmt"
	"log"

	"fpgaflow"
	"fpgaflow/internal/arch"
	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/place"
)

const rev1 = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity filter is
  port (
    clk, rst : in std_logic;
    d   : in std_logic_vector(3 downto 0);
    q   : out std_logic_vector(3 downto 0)
  );
end filter;
architecture rtl of filter is
  signal acc : std_logic_vector(3 downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      acc <= (others => '0');
    elsif rising_edge(clk) then
      acc <= std_logic_vector(unsigned(acc) + unsigned(d));
    end if;
  end process;
  q <= acc;
end rtl;
`

// Revision 2 subtracts instead of adding: a one-operator field fix.
const rev2 = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity filter is
  port (
    clk, rst : in std_logic;
    d   : in std_logic_vector(3 downto 0);
    q   : out std_logic_vector(3 downto 0)
  );
end filter;
architecture rtl of filter is
  signal acc : std_logic_vector(3 downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      acc <= (others => '0');
    elsif rising_edge(clk) then
      acc <= std_logic_vector(unsigned(acc) - unsigned(d));
    end if;
  end process;
  q <= acc;
end rtl;
`

func main() {
	// Both revisions must target the identical fabric (fixed grid) and,
	// for a deployed board, the identical pinout.
	a := arch.Paper()
	a.Rows, a.Cols = 4, 4
	a.Routing.ChannelWidth = 12
	pins := map[string]place.Location{
		"clk": {X: 0, Y: 1, Sub: 0}, "rst": {X: 0, Y: 2, Sub: 0},
		"d[0]": {X: 1, Y: 0, Sub: 0}, "d[1]": {X: 2, Y: 0, Sub: 0}, "d[2]": {X: 3, Y: 0, Sub: 0}, "d[3]": {X: 4, Y: 0, Sub: 0},
		"out:q[0]": {X: 5, Y: 1, Sub: 0}, "out:q[1]": {X: 5, Y: 2, Sub: 0}, "out:q[2]": {X: 5, Y: 3, Sub: 0}, "out:q[3]": {X: 5, Y: 4, Sub: 0},
	}

	compile := func(src string) *fpgaflow.Result {
		res, err := fpgaflow.Run(src, fpgaflow.Options{Seed: 1, Arch: a, FixedPads: pins})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Verified {
			log.Fatal("bitstream failed verification")
		}
		return res
	}
	r1 := compile(rev1)
	r2 := compile(rev2)
	fmt.Printf("revision 1: %d bytes bitstream, %d LUTs\n", len(r1.Encoded), r1.Metrics.LUTs)
	fmt.Printf("revision 2: %d bytes bitstream, %d LUTs (same grid, same pinout)\n", len(r2.Encoded), r2.Metrics.LUTs)

	d, err := bitstream.Diff(r1.Bits, r2.Bits)
	if err != nil {
		log.Fatal(err)
	}
	total, err := bitstream.NumConfigBits(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartial reconfiguration delta: %d items (%d tiles, %d switch changes)\n",
		d.Size(), len(d.CLBs), len(d.SwitchSet)+len(d.OPinSet)+len(d.IPinSet))
	fmt.Printf("full fabric configuration is %d bits; the field update rewrites only the delta\n", total)

	// Prove the patch: apply the delta to revision 1's configuration and
	// check it now implements revision 2.
	patched := r1.Bits.Clone()
	if err := bitstream.Apply(patched, d); err != nil {
		log.Fatal(err)
	}
	if _, err := bitstream.Extract(patched); err != nil {
		log.Fatal(err)
	}
	fmt.Println("patched configuration extracts cleanly: field update verified")
}
