// Interconnect sizing study: regenerates the paper's §3.3 exploration that
// selected 10x-minimum pass transistors on length-1 wires at minimum metal
// width and double spacing (Figures 8, 9, 10 plus the tri-state buffer
// comparison).
//
// Run with: go run ./examples/interconnect
package main

import (
	"fmt"
	"os"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuit"
	"fpgaflow/internal/experiments"
)

func main() {
	experiments.Fig8(os.Stdout)
	fmt.Println()
	experiments.Fig9(os.Stdout)
	fmt.Println()
	experiments.Fig10(os.Stdout)
	fmt.Println()
	experiments.TriState(os.Stdout)

	// Summarize the architecture decision the sweeps imply.
	tech := arch.STM018()
	cfg := circuit.MinWidthDblSpacing()
	best := circuit.OptimalWidth(circuit.PassTransistorSweep(tech, cfg, 1))
	fmt.Printf("\nconclusion: pass transistors at %gx minimum width on length-1 wires with\n", best)
	fmt.Printf("min-width double-spacing metal give the best energy-delay-area product;\n")
	fmt.Printf("this is the configuration arch.Paper() encodes.\n")
}
