// Low-power architecture exploration: the paper's central design activity.
// This example reruns the §3 decisions on a workload: it compares the
// double-edge-triggered flip-flop and clock-gating features at flow level,
// and sweeps LUT size K to show the K=4 energy optimum.
//
// Run with: go run ./examples/lowpower
package main

import (
	"fmt"
	"log"
	"os"

	"fpgaflow"
	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/experiments"
	"fpgaflow/internal/pack"
)

func main() {
	workload := circuits.Counter(8)
	fmt.Println("== feature ablation on", workload.Name, "(100 MHz data rate) ==")
	type variant struct {
		name         string
		gated, detff bool
	}
	for _, v := range []variant{
		{"DETFF + gated clock (paper)", true, true},
		{"DETFF, no clock gating", false, true},
		{"SETFF + gated clock", true, false},
		{"SETFF, no gating (baseline)", false, false},
	} {
		a := arch.Paper()
		a.CLB.GatedClock = v.gated
		a.CLB.DoubleEdgeFF = v.detff
		res, err := fpgaflow.Run(workload.VHDL, fpgaflow.Options{
			Seed: 1, Arch: a, AutoSizeGrid: true, ClockHz: 100e6, SkipVerify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s clock %7.4f mW, total %7.4f mW\n",
			v.name, res.Power.DynamicClock*1e3, res.Power.Total*1e3)
	}

	fmt.Println("\n== LUT size exploration (paper §3.1: K=4 minimizes energy) ==")
	if _, err := experiments.ExploreLUTSize(os.Stdout, circuits.SmallSuite(), 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== cluster input rule I=(K/2)(N+1) ==")
	fmt.Printf("K=4, N=5 -> I=%d (the paper's CLB)\n", pack.InputsForUtilization(4, 5))
	if _, err := experiments.ExploreClusterInputs(os.Stdout, circuits.SmallSuite()); err != nil {
		log.Fatal(err)
	}
}
