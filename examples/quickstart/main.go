// Quickstart: push a small VHDL design through the complete flow — parse,
// synthesize, optimize, map, pack, place, route, estimate power, generate
// the bitstream — and verify the bitstream implements the source.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"fpgaflow"
)

const design = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity blinker is
  port (
    clk, rst : in std_logic;
    led      : out std_logic_vector(3 downto 0)
  );
end blinker;

architecture rtl of blinker is
  signal cnt : std_logic_vector(3 downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      cnt <= (others => '0');
    elsif rising_edge(clk) then
      cnt <= std_logic_vector(unsigned(cnt) + 1);
    end if;
  end process;
  led <= cnt;
end rtl;
`

func main() {
	res, err := fpgaflow.Run(design, fpgaflow.Options{Seed: 1, MinChannelWidth: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	if !res.Verified {
		log.Fatal("bitstream failed verification")
	}
	out := "blinker.bit"
	if err := os.WriteFile(out, res.Encoded, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbitstream written to %s (%d bytes), verified equivalent to the VHDL source\n",
		out, len(res.Encoded))
	fmt.Printf("the design needs a %dx%d logic grid with %d-track channels and runs at %.1f MHz\n",
		res.Metrics.GridW, res.Metrics.GridH, res.Metrics.ChannelWidth, res.Metrics.MaxClockMHz)
}
