package fpgaflow

// Integration test for the standalone tool binaries: builds every cmd/ tool
// and drives the paper's complete pipeline through them, the way a user at
// the command line would (the "Modularity" feature of §4.1).

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fpgaflow/internal/circuits"
)

func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func runTool(t *testing.T, bin string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String()
}

func TestCommandLinePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	tool := func(name string) string { return filepath.Join(bin, name) }
	vhdl := circuits.RippleAdder(4).VHDL

	// vparse accepts the design and rejects garbage.
	if out := runTool(t, tool("vparse"), vhdl); !strings.Contains(out, "OK") {
		t.Fatalf("vparse: %q", out)
	}
	bad := exec.Command(tool("vparse"))
	bad.Stdin = strings.NewReader("entity broken is port (")
	if err := bad.Run(); err == nil {
		t.Fatal("vparse accepted broken source")
	}

	// The chained pipeline: diviner | druid | e2fmt | sisopt | dagger.
	edif := runTool(t, tool("diviner"), vhdl)
	if !strings.HasPrefix(strings.TrimSpace(edif), "(edif") {
		t.Fatalf("diviner output not EDIF:\n%.200s", edif)
	}
	normalized := runTool(t, tool("druid"), edif)
	blif := runTool(t, tool("e2fmt"), normalized)
	if !strings.Contains(blif, ".model") {
		t.Fatalf("e2fmt output not BLIF:\n%.200s", blif)
	}
	mapped := runTool(t, tool("sisopt"), blif, "-k", "4")
	if !strings.Contains(mapped, ".names") {
		t.Fatalf("sisopt output empty:\n%.200s", mapped)
	}

	// tvpack reports clusters; vpr places and routes; powermodel reports.
	packed := runTool(t, tool("tvpack"), mapped)
	if !strings.Contains(packed, "cluster 0:") {
		t.Fatalf("tvpack: %q", packed)
	}
	vprOut := runTool(t, tool("vpr"), mapped, "-min-w")
	if !strings.Contains(vprOut, "critical path") || !strings.Contains(vprOut, "minimum channel width") {
		t.Fatalf("vpr: %q", vprOut)
	}
	powerOut := runTool(t, tool("powermodel"), mapped, "-clock", "50")
	if !strings.Contains(powerOut, "total") {
		t.Fatalf("powermodel: %q", powerOut)
	}

	// dagger produces a bitstream file and can reverse it.
	mappedFile := filepath.Join(bin, "mapped.blif")
	if err := os.WriteFile(mappedFile, []byte(mapped), 0o644); err != nil {
		t.Fatal(err)
	}
	bit := filepath.Join(bin, "design.bit")
	dOut := runTool(t, tool("dagger"), "", "-o", bit, mappedFile)
	if !strings.Contains(dOut, "verified: true") {
		t.Fatalf("dagger: %q", dOut)
	}
	extracted := runTool(t, tool("dagger"), "", "-extract", bit)
	if !strings.Contains(extracted, ".model") {
		t.Fatalf("dagger -extract: %q", extracted)
	}
	// equiv confirms the extracted netlist matches the mapped one.
	extractedFile := filepath.Join(bin, "extracted.blif")
	if err := os.WriteFile(extractedFile, []byte(extracted), 0o644); err != nil {
		t.Fatal(err)
	}
	eq := runTool(t, tool("equiv"), "", mappedFile, extractedFile)
	if !strings.Contains(eq, "EQUIVALENT") {
		t.Fatalf("equiv: %q", eq)
	}

	// dutys emits a parseable architecture file.
	archFile := filepath.Join(bin, "fpga.arch")
	archText := runTool(t, tool("dutys"), "", "-rows", "6", "-cols", "6")
	if err := os.WriteFile(archFile, []byte(archText), 0o644); err != nil {
		t.Fatal(err)
	}
	check := runTool(t, tool("dutys"), "", "-check", archFile)
	if !strings.Contains(check, "OK") {
		t.Fatalf("dutys -check: %q", check)
	}

	// The one-shot driver.
	full := runTool(t, tool("fpgaflow"), vhdl, "-timing")
	if !strings.Contains(full, "bitstream equivalent to source") {
		t.Fatalf("fpgaflow: %q", full)
	}
}
